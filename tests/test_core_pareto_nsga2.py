"""Tests for Pareto utilities and the NSGA-II selection machinery."""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np
import pytest

from repro.core.nsga2 import (
    binary_tournament,
    environmental_selection,
    rank_population,
    rank_population_arrays,
    select_and_rerank,
    tournament_winner,
)
from repro.core.pareto import (
    crowding_distances,
    dominates,
    fast_nondominated_sort,
    nondominated_filter,
    nondominated_indices,
)


@dataclasses.dataclass
class Point:
    objectives: Tuple[float, float]


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_non_dominance(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_nondominated_indices_simple_front(self):
        vectors = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)]
        assert nondominated_indices(vectors) == [0, 1, 2]

    def test_nondominated_filter_on_objects(self):
        points = [Point((1.0, 4.0)), Point((2.0, 2.0)), Point((3.0, 3.0))]
        front = nondominated_filter(points, key=lambda p: p.objectives)
        assert points[2] not in front
        assert len(front) == 2


class TestFastNondominatedSort:
    def test_fronts_are_ordered(self):
        vectors = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (1.5, 0.5)]
        fronts = fast_nondominated_sort(vectors)
        assert set(fronts[0]) == {0, 3}
        assert fronts[1] == [1]
        assert fronts[2] == [2]

    def test_all_nondominated_single_front(self):
        vectors = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        fronts = fast_nondominated_sort(vectors)
        assert len(fronts) == 1
        assert set(fronts[0]) == {0, 1, 2}

    def test_every_index_appears_exactly_once(self):
        rng = np.random.default_rng(0)
        vectors = [tuple(v) for v in rng.random((40, 2))]
        fronts = fast_nondominated_sort(vectors)
        flattened = [i for front in fronts for i in front]
        assert sorted(flattened) == list(range(40))


class TestCrowding:
    def test_boundary_points_infinite(self):
        vectors = [(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0)]
        distances = crowding_distances(vectors)
        assert distances[0] == float("inf")
        assert distances[-1] == float("inf")
        assert np.isfinite(distances[1]) and np.isfinite(distances[2])

    def test_denser_region_has_smaller_distance(self):
        vectors = [(0.0, 10.0), (1.0, 5.0), (1.1, 4.9), (1.2, 4.8), (10.0, 0.0)]
        distances = crowding_distances(vectors)
        assert distances[2] < distances[1]

    def test_empty(self):
        assert crowding_distances([]) == []


class TestBackendDispatch:
    """The numpy/python Pareto backends are interchangeable and validated."""

    VECTORS = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0), (2.0, 2.0),
               (float("inf"), 0.0), (0.5, float("inf"))]

    def test_unknown_backend_rejected(self):
        for function in (fast_nondominated_sort, crowding_distances,
                         nondominated_indices):
            with pytest.raises(ValueError):
                function(self.VECTORS, backend="cython")

    def test_sort_backends_agree(self):
        assert fast_nondominated_sort(self.VECTORS, backend="numpy") == \
            fast_nondominated_sort(self.VECTORS, backend="python")

    def test_indices_backends_agree(self):
        assert nondominated_indices(self.VECTORS, backend="numpy") == \
            nondominated_indices(self.VECTORS, backend="python")

    def test_crowding_backends_agree(self):
        assert crowding_distances(self.VECTORS, backend="numpy") == \
            crowding_distances(self.VECTORS, backend="python")

    def test_empty_input(self):
        for backend in ("numpy", "python"):
            assert fast_nondominated_sort([], backend=backend) == []
            assert crowding_distances([], backend=backend) == []
            assert nondominated_indices([], backend=backend) == []

    def test_filter_backends_agree(self):
        points = [Point(v) for v in self.VECTORS]
        assert nondominated_filter(points, key=lambda p: p.objectives,
                                   backend="numpy") == \
            nondominated_filter(points, key=lambda p: p.objectives,
                                backend="python")

    def test_fronts_are_ascending(self):
        rng = np.random.default_rng(3)
        vectors = [tuple(v) for v in rng.random((60, 2))]
        for backend in ("numpy", "python"):
            for front in fast_nondominated_sort(vectors, backend=backend):
                assert front == sorted(front)


class TestNsga2Selection:
    def _population(self):
        return [Point((1.0, 5.0)), Point((2.0, 3.0)), Point((3.0, 2.0)),
                Point((5.0, 1.0)), Point((4.0, 4.0)), Point((6.0, 6.0))]

    def test_rank_population_assigns_ranks(self):
        ranked = rank_population(self._population())
        ranks = [r.rank for r in ranked]
        assert ranks[:4] == [0, 0, 0, 0]
        assert ranks[4] == 1 and ranks[5] > 0

    def test_environmental_selection_prefers_first_front(self):
        population = self._population()
        survivors = environmental_selection(population, 4)
        assert len(survivors) == 4
        assert all(p.objectives != (6.0, 6.0) for p in survivors)

    def test_environmental_selection_truncates_by_crowding(self):
        population = [Point((float(i), float(10 - i))) for i in range(11)]
        population.append(Point((5.0, 5.0001)))  # crowded duplicate-ish point
        survivors = environmental_selection(population, 5)
        objectives = {p.objectives for p in survivors}
        # The extreme points always survive truncation.
        assert (0.0, 10.0) in objectives
        assert (10.0, 0.0) in objectives

    def test_environmental_selection_invalid_size(self):
        with pytest.raises(ValueError):
            environmental_selection(self._population(), 0)

    def test_binary_tournament_prefers_better_rank(self):
        population = self._population()
        ranked = rank_population(population)
        rng = np.random.default_rng(0)
        winners = [binary_tournament(ranked, rng) for _ in range(100)]
        dominated_wins = sum(1 for w in winners if w.objectives == (6.0, 6.0))
        assert dominated_wins < 30

    def test_binary_tournament_empty(self):
        with pytest.raises(ValueError):
            binary_tournament([], np.random.default_rng(0))

    def test_binary_tournament_singleton_population(self):
        only = Point((1.0, 1.0))
        ranked = rank_population([only])
        assert binary_tournament(ranked, np.random.default_rng(0)) is only

    def test_binary_tournament_never_self_competes(self):
        """With two members where one dominates, the tournament always draws
        two distinct competitors, so the dominated one can never win (the old
        same-index bug let it win ~25% of the time)."""
        better = Point((1.0, 1.0))
        worse = Point((2.0, 2.0))
        ranked = rank_population([better, worse])
        rng = np.random.default_rng(0)
        winners = [binary_tournament(ranked, rng) for _ in range(200)]
        assert all(w is better for w in winners)

    def test_environmental_selection_partial_front_tied_crowding(self):
        """Truncating inside a front of equally spaced (tied-crowding) points
        keeps exactly target_size survivors including both boundary points."""
        front = [Point((float(i), float(6 - i))) for i in range(7)]
        survivors = environmental_selection(front, 4)
        assert len(survivors) == 4
        objectives = {p.objectives for p in survivors}
        # Boundary points carry infinite crowding and always survive; the
        # interior picks come from the tied group without duplication.
        assert (0.0, 6.0) in objectives and (6.0, 0.0) in objectives
        assert len(objectives) == 4

    def test_environmental_selection_all_tied_interior(self):
        """A partial front where every interior crowding distance ties must
        still fill deterministically to the requested size."""
        front = [Point((float(i), float(9 - i))) for i in range(10)]
        first = environmental_selection(front, 5)
        second = environmental_selection(front, 5)
        assert [p.objectives for p in first] == [p.objectives for p in second]
        assert len(first) == 5

    def test_partial_front_tie_break_keeps_earlier_front_members(self):
        """The crowding-truncation tie-break is pinned behavior: on equal
        crowding, the member earlier in the front (smaller population index)
        survives, and survivors are emitted in descending-crowding order.

        Five equally spaced colinear points form one front whose three
        interior members all carry crowding 1.0; truncating to four must keep
        both infinite-crowding boundary points first, then the two earliest
        interior members -- never the last one."""
        front = [Point((float(i), float(4 - i))) for i in range(5)]
        survivors = environmental_selection(front, 4)
        assert survivors == [front[0], front[4], front[1], front[2]]


class TestArrayNativeSelection:
    """select_and_rerank / rank_population_arrays vs. the object-based API."""

    def _random_population(self, rng, n):
        vectors = rng.integers(0, 8, size=(n, 2)).astype(float)
        # A few infeasible (infinite-error) members, like the engine produces.
        for i in range(0, n, 7):
            vectors[i, 0] = np.inf
        return [Point((float(a), float(b))) for a, b in vectors]

    def test_rank_population_arrays_matches_objects(self):
        rng = np.random.default_rng(11)
        population = self._random_population(rng, 40)
        ranked_objects = rank_population(population)
        ranked_arrays = rank_population_arrays(population)
        assert ranked_arrays.individuals is population
        assert [int(r) for r in ranked_arrays.ranks] == \
            [r.rank for r in ranked_objects]
        assert [float(c) for c in ranked_arrays.crowding] == \
            [r.crowding for r in ranked_objects]

    def test_select_and_rerank_matches_two_pass_reference(self):
        """One combined-population sort must reproduce, exactly, the
        reference sequence `environmental_selection` then a fresh
        `rank_population_arrays` of the survivors -- same survivor list
        (identity and order), bit-equal ranks and crowding."""
        rng = np.random.default_rng(7)
        for _trial in range(20):
            n = int(rng.integers(4, 60))
            target = int(rng.integers(1, n))
            population = self._random_population(rng, n)
            survivors, ranked = select_and_rerank(population, target)
            reference = environmental_selection(population, target)
            assert len(survivors) == target
            assert all(a is b for a, b in zip(survivors, reference))
            rereference = rank_population_arrays(survivors)
            assert list(ranked.ranks) == list(rereference.ranks)
            assert list(ranked.crowding) == list(rereference.crowding)

    def test_select_and_rerank_invalid_size(self):
        with pytest.raises(ValueError):
            select_and_rerank([Point((1.0, 1.0))], 0)

    def test_tournament_winner_matches_crowded_comparison(self):
        """tournament_winner's (first_index, second_draw) encoding maps the
        second draw around the first index (distinct-pair sampling) and
        applies the same crowded-comparison as RankedIndividual.beats."""
        rng = np.random.default_rng(3)
        population = self._random_population(rng, 12)
        ranked_objects = rank_population(population)
        ranked_arrays = rank_population_arrays(population)
        n = len(population)
        for first in range(n):
            for draw in range(n - 1):
                second = draw + (draw >= first)
                assert second != first
                winner = tournament_winner(ranked_arrays, first, draw)
                expected = (first if ranked_objects[first].beats(
                    ranked_objects[second]) else second)
                assert winner == expected


class TestTwoObjectiveSweep:
    """The numpy backend's O(n log n) two-objective fast paths agree with
    the pure-Python oracle on adversarial inputs (duplicates, infs, ties)."""

    def _adversarial_vectors(self, rng, n):
        vectors = rng.integers(0, 6, size=(n, 2)).astype(float)
        vectors[rng.random(n) < 0.1, 0] = np.inf
        vectors[rng.random(n) < 0.1, 1] = np.inf
        return [tuple(v) for v in vectors]

    def test_sort_agrees_with_python_oracle(self):
        rng = np.random.default_rng(42)
        for n in (1, 2, 3, 17, 120):
            vectors = self._adversarial_vectors(rng, n)
            assert fast_nondominated_sort(vectors, backend="numpy") == \
                fast_nondominated_sort(vectors, backend="python")

    def test_indices_agree_with_python_oracle(self):
        rng = np.random.default_rng(43)
        for n in (1, 2, 3, 17, 120):
            vectors = self._adversarial_vectors(rng, n)
            assert nondominated_indices(vectors, backend="numpy") == \
                nondominated_indices(vectors, backend="python")

    def test_three_objectives_still_agree(self):
        """>2 objectives take the domination-matrix path -- keep it covered."""
        rng = np.random.default_rng(44)
        vectors = [tuple(v) for v in
                   rng.integers(0, 4, size=(50, 3)).astype(float)]
        assert fast_nondominated_sort(vectors, backend="numpy") == \
            fast_nondominated_sort(vectors, backend="python")
        assert nondominated_indices(vectors, backend="numpy") == \
            nondominated_indices(vectors, backend="python")

    def test_all_duplicates_single_front(self):
        vectors = [(2.0, 2.0)] * 6
        assert fast_nondominated_sort(vectors, backend="numpy") == \
            [[0, 1, 2, 3, 4, 5]]
        assert nondominated_indices(vectors, backend="numpy") == \
            [0, 1, 2, 3, 4, 5]
