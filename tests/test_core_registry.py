"""Backend registries: introspection, registration round trips, dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run_caffeine
from repro.core.evaluation import InterpColumnBackend
from repro.core.pareto import PYTHON_PARETO_BACKEND
from repro.core.registry import (
    BACKEND_KINDS,
    available_backends,
    backend_names,
    backend_registry,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset


def _train(seed: int = 0, n: int = 50) -> Dataset:
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(n, 3))
    y = 3.0 + 2.0 * X[:, 0] / X[:, 1] + 0.5 * X[:, 2]
    return Dataset(X, y, variable_names=("a", "b", "c"))


def _front(result):
    return [(m.train_error, m.complexity, m.expression())
            for m in result.tradeoff]


class TestIntrospection:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert set(names) == set(BACKEND_KINDS)
        assert names["column"] == ("compiled", "interp")
        assert names["fit"] == ("direct", "gram")
        assert names["pareto"] == ("numpy", "python")
        assert names["evaluation"] == ("process", "serial", "thread")

    def test_registry_protocol(self):
        registry = backend_registry("pareto")
        assert "numpy" in registry
        assert "nope" not in registry
        assert len(registry) >= 2
        assert list(iter(registry)) == list(registry.names())

    def test_unknown_kind_and_name_errors(self):
        with pytest.raises(KeyError, match="unknown backend kind"):
            backend_registry("flux-capacitor")
        with pytest.raises(KeyError, match="registered:"):
            get_backend("pareto", "nope")
        with pytest.raises(KeyError, match="no pareto backend"):
            unregister_backend("pareto", "nope")

    def test_settings_validation_lists_registered_names(self):
        with pytest.raises(ValueError, match="pareto_backend must be one of"):
            CaffeineSettings(pareto_backend="nope")
        with pytest.raises(ValueError, match="column_backend must be one of"):
            CaffeineSettings(column_backend="nope")
        with pytest.raises(ValueError, match="fit_backend must be one of"):
            CaffeineSettings(fit_backend="nope")
        with pytest.raises(ValueError,
                           match="evaluation_backend must be one of"):
            CaffeineSettings(evaluation_backend="nope")


class TestRegistration:
    def test_duplicate_rejected_unless_replace(self):
        registry = backend_registry("pareto")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("numpy", lambda: None)
        # replace=True must restore the original afterwards -- grab it first.
        original = registry.get("numpy")
        registry.register("numpy", original, replace=True)
        assert registry.get("numpy") is original

    def test_invalid_names_and_factories(self):
        registry = backend_registry("column")
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register("", lambda X, s: None)
        with pytest.raises(TypeError, match="callable"):
            registry.register("broken", "not-a-factory")

    def test_is_builtin_tracks_shadowing(self):
        from repro.core.registry import is_builtin_backend

        assert is_builtin_backend("pareto", "numpy")
        assert not is_builtin_backend("pareto", "never-registered")
        with pytest.raises(KeyError, match="unknown backend kind"):
            is_builtin_backend("flux", "numpy")
        # A replace=True shadow of a built-in name is NOT builtin anymore:
        # a spawn-started worker would resolve the name differently.
        registry = backend_registry("pareto")
        original = registry.get("numpy")
        registry.register("numpy", lambda: PYTHON_PARETO_BACKEND,
                          replace=True)
        try:
            assert not is_builtin_backend("pareto", "numpy")
        finally:
            registry.register("numpy", original, replace=True)
        assert is_builtin_backend("pareto", "numpy")

    def test_process_executor_rejects_custom_column_backend_on_spawn(
            self, monkeypatch):
        import multiprocessing

        from repro.core.registry import _process_executor_factory

        monkeypatch.setattr(multiprocessing, "get_start_method",
                            lambda allow_none=False: "spawn")
        register_backend("column", "probe-column",
                         lambda X, settings: None)
        try:
            with pytest.raises(ValueError, match="freshly imported registry"):
                _process_executor_factory(2, np.zeros((3, 2)),
                                          "probe-column")
        finally:
            unregister_backend("column", "probe-column")

    def test_unregister_returns_factory(self):
        sentinel = lambda: PYTHON_PARETO_BACKEND  # noqa: E731
        register_backend("pareto", "temp-backend", sentinel)
        assert "temp-backend" in backend_names("pareto")
        assert unregister_backend("pareto", "temp-backend") is sentinel
        assert "temp-backend" not in backend_names("pareto")


class TestRoundTrip:
    """Register a toy backend by name, run with it, unregister."""

    def test_toy_pareto_backend_runs_and_matches(self):
        calls = {"sorts": 0}

        class CountingKernels:
            def nondominated_indices(self, vectors):
                return PYTHON_PARETO_BACKEND.nondominated_indices(vectors)

            def fast_nondominated_sort(self, vectors):
                calls["sorts"] += 1
                return PYTHON_PARETO_BACKEND.fast_nondominated_sort(vectors)

            def crowding_distances(self, vectors):
                return PYTHON_PARETO_BACKEND.crowding_distances(vectors)

        register_backend("pareto", "toy-counting", lambda: CountingKernels())
        try:
            settings = CaffeineSettings(population_size=16, n_generations=3,
                                        random_seed=5,
                                        pareto_backend="toy-counting")
            train = _train()
            toy = run_caffeine(train, settings=settings)
            reference = run_caffeine(
                train, settings=settings.copy(pareto_backend="numpy"))
            assert calls["sorts"] > 0  # the engine really dispatched to it
            assert _front(toy) == _front(reference)
        finally:
            unregister_backend("pareto", "toy-counting")
        # Once unregistered, the name stops validating.
        with pytest.raises(ValueError, match="pareto_backend must be one of"):
            CaffeineSettings(pareto_backend="toy-counting")

    def test_toy_column_backend_runs_and_matches(self):
        built = []

        def factory(X, settings):
            backend = InterpColumnBackend(X, settings)
            built.append(backend)
            return backend

        register_backend("column", "toy-interp", factory)
        try:
            settings = CaffeineSettings(population_size=16, n_generations=3,
                                        random_seed=5,
                                        column_backend="toy-interp")
            train = _train()
            toy = run_caffeine(train, settings=settings)
            reference = run_caffeine(
                train, settings=settings.copy(column_backend="compiled"))
            assert built  # the evaluator built the registered backend
            assert _front(toy) == _front(reference)
        finally:
            unregister_backend("column", "toy-interp")

    def test_toy_serial_evaluation_backend(self):
        """An evaluation factory returning None degrades to serial."""
        register_backend("evaluation", "toy-serial",
                         lambda workers, X, column_backend: None)
        try:
            settings = CaffeineSettings(population_size=16, n_generations=3,
                                        random_seed=5,
                                        evaluation_backend="toy-serial")
            train = _train()
            toy = run_caffeine(train, settings=settings)
            reference = run_caffeine(
                train, settings=settings.copy(evaluation_backend="serial"))
            assert _front(toy) == _front(reference)
        finally:
            unregister_backend("evaluation", "toy-serial")


class TestWorkerStartMethod:
    def test_does_not_pin_the_default(self):
        """Reading the method must not block a later set_start_method."""
        import subprocess
        import sys

        probe = (
            "import multiprocessing\n"
            "from repro.core.registry import worker_start_method\n"
            "m = worker_start_method()\n"
            "assert m in multiprocessing.get_all_start_methods()\n"
            "other = [x for x in multiprocessing.get_all_start_methods()"
            " if x != m][0]\n"
            "multiprocessing.set_start_method(other)  # must not raise\n"
            "print('ok', m, other)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=__import__("os").path.dirname(
                __import__("os").path.dirname(__file__)),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("ok")
