"""HTTP serving of frozen fronts: responses equal the offline computations.

A served ``/predict`` must return bit-for-bit what the frozen model's
``predict`` produces, and ``/rescore`` must equal
:func:`repro.core.report.rescore_models` (non-finite errors map to JSON
null).  The profiler behind ``/stats`` is tested for its percentile and
throughput arithmetic since the benchmark trajectory's ``serving`` section
is built from it.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.artifact import load_front, save_front
from repro.core.report import rescore_models
from repro.estimator import SymbolicRegressor
from repro.serve import RequestProfiler, make_server


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(7)
    X = rng.uniform(0.5, 2.0, size=(32, 2))
    y = 1.0 + 2.0 * X[:, 0] / X[:, 1]
    est = SymbolicRegressor(population_size=20, n_generations=3,
                            random_seed=0).fit(X, y)
    return est, X, y


@pytest.fixture(scope="module")
def server(fitted, tmp_path_factory):
    est, X, y = fitted
    path = tmp_path_factory.mktemp("serve") / "front.caffeine"
    save_front(est.result_, path)
    server = make_server(str(path))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _post_status(server, path, payload) -> int:
    try:
        request = urllib.request.Request(
            server.url + path, data=json.dumps(payload).encode("utf-8"))
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


class TestEndpoints:
    def test_healthz(self, server):
        health = _get(server, "/healthz")
        assert health["status"] == "ok"
        assert health["n_models"] == server.front.n_models
        assert health["n_variables"] == 2
        assert health["cold_load_ms"] > 0

    def test_models_listing(self, server):
        listing = _get(server, "/models")
        assert len(listing["models"]) == server.front.n_models
        assert listing["models"][0]["expression"]
        assert listing["dataset_fingerprint"] == \
            server.front.dataset_fingerprint

    def test_predict_equals_selected_model(self, server, fitted):
        est, X, _ = fitted
        response = _post(server, "/predict", {"X": X.tolist()})
        assert response["n_rows"] == X.shape[0]
        np.testing.assert_array_equal(np.asarray(response["predictions"]),
                                      est.predict(X))
        assert response["model"]["expression"] == est.expression()

    def test_predict_all_models(self, server, fitted):
        est, X, _ = fitted
        response = _post(server, "/predict",
                         {"X": X.tolist(), "all_models": True})
        predictions = np.asarray(response["predictions"], dtype=float)
        assert predictions.shape == (server.front.n_models, X.shape[0])
        for row, model in zip(predictions, server.front.models):
            np.testing.assert_array_equal(row, model.predict(X))

    def test_predict_selection_knobs(self, server):
        front = server.front
        simplest = float(min(m.complexity for m in front.models))
        response = _post(server, "/predict",
                         {"X": [[1.0, 1.0]], "by": "train",
                          "complexity_max": simplest})
        assert response["model"]["complexity"] <= simplest
        response = _post(server, "/predict",
                         {"X": [[1.0, 1.0]], "model_index": 0})
        assert response["model"]["index"] == 0

    def test_rescore_equals_rescore_models(self, server, fitted):
        est, X, y = fitted
        response = _post(server, "/rescore",
                         {"X": X.tolist(), "y": y.tolist()})
        offline = rescore_models(list(est.pareto_front_), X, y)
        assert len(response["errors"]) == len(offline)
        for served, computed in zip(response["errors"], offline):
            if served is None:
                assert not np.isfinite(computed)
            else:
                assert served == computed

    def test_stats_accumulate(self, server):
        _post(server, "/predict", {"X": [[1.0, 1.0]]})
        stats = _get(server, "/stats")
        predict = stats["steps"]["predict"]
        assert predict["count"] >= 1
        assert predict["p50_ms"] > 0
        assert predict["rows_per_second"] > 0


class TestRejections:
    def test_missing_x(self, server):
        assert _post_status(server, "/predict", {}) == 400

    def test_feature_count_mismatch(self, server):
        assert _post_status(server, "/predict",
                            {"X": [[1.0, 2.0, 3.0]]}) == 400

    def test_unsatisfiable_complexity_bound(self, server):
        assert _post_status(server, "/predict",
                            {"X": [[1.0, 1.0]],
                             "complexity_max": -1.0}) == 400

    def test_unknown_paths(self, server):
        assert _post_status(server, "/nope", {"X": []}) == 404
        try:
            _get(server, "/nope")
            status = 200
        except urllib.error.HTTPError as error:
            error.read()
            status = error.code
        assert status == 404


class TestRequestProfiler:
    def test_percentiles_nearest_rank(self):
        profiler = RequestProfiler()
        for ms in range(1, 101):  # 1..100 ms
            profiler.record("step", ms / 1000.0, rows=10)
        snapshot = profiler.snapshot()["steps"]["step"]
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == pytest.approx(50.0)
        assert snapshot["p95_ms"] == pytest.approx(95.0)
        assert snapshot["p99_ms"] == pytest.approx(99.0)
        assert snapshot["total_rows"] == 1000
        assert snapshot["rows_per_second"] == pytest.approx(
            1000 / snapshot["total_seconds"])

    def test_profile_step_context(self):
        profiler = RequestProfiler()
        with profiler.profile_step("work", rows=5):
            pass
        snapshot = profiler.snapshot()["steps"]["work"]
        assert snapshot["count"] == 1
        assert snapshot["total_rows"] == 5

    def test_sample_window_is_bounded(self):
        profiler = RequestProfiler(max_samples=8)
        for i in range(100):
            profiler.record("step", float(i))
        assert len(profiler._samples["step"]) == 8
        assert profiler.snapshot()["steps"]["step"]["count"] == 100

    def test_metrics_gauges(self):
        profiler = RequestProfiler()
        profiler.set_metric("cold_load_ms", 12.5)
        assert profiler.snapshot()["metrics"]["cold_load_ms"] == 12.5


class TestServerLoading:
    def test_make_server_accepts_front_object(self, fitted, tmp_path):
        est, X, _ = fitted
        path = tmp_path / "front.caffeine"
        save_front(est.result_, path)
        front = load_front(path)
        server = make_server(front, port=0)
        try:
            assert server.front is front
            # no cold load happened: the caller already held the front
            assert "cold_load_ms" not in \
                server.profiler.snapshot()["metrics"]
        finally:
            server.server_close()
