"""Batched vs scalar residual engine: bit-for-bit equality guarantees.

The generation-batched residual pass (``CaffeineSettings.residual_backend =
"batched"``) claims its stacked predictions and row-stacked residual
reductions are bit-for-bit identical to the per-individual scalar path.
These tests enforce that claim over adversarial inputs (NaN, signed zeros,
huge magnitudes, infinities) and over full fixed-seed engine runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings
from hypothesis import strategies as st

from repro.core.engine import run_caffeine
from repro.core.evaluation import (
    BatchedResidualBackend,
    PopulationEvaluator,
    ScalarResidualBackend,
)
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.model import batch_test_errors
from repro.core.registry import backend_names
from repro.core.settings import CaffeineSettings
from repro.data.metrics import relative_rmse, relative_rmse_rows
from repro.regression.least_squares import (
    LinearFit,
    fit_linear,
    predict_linear,
    predict_linear_batch,
)

FAST = hyp_settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

#: Adversarial float values: huge magnitudes near the overflow edge, tiny
#: denormal-adjacent values, signed zeros, NaN and infinities -- everything
#: an evolved expression can feed the residual pass.
ADVERSARIAL = st.one_of(
    st.floats(min_value=-1e300, max_value=1e300, allow_subnormal=True),
    st.sampled_from([float("nan"), float("inf"), float("-inf"),
                     0.0, -0.0, 1e308, -1e308, 5e-324, -5e-324]),
)
FINITE = st.floats(min_value=-1e150, max_value=1e150,
                   allow_nan=False, allow_infinity=False)


def _bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """True bit-for-bit equality (NaN payloads and signed zeros included)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return a.shape == b.shape and a.tobytes() == b.tobytes()


def _bit_equal_modulo_nan_payload(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit equality except NaN payloads: NaNs must sit in identical
    positions, every non-NaN element must match bit for bit (signed zeros
    included) -- the exact guarantee ``predict_linear_batch`` documents for
    NaN-bearing inputs, where SIMD lanes vs scalar tails may propagate
    different payloads through two-NaN additions."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        return False
    nan_a = np.isnan(a)
    if not np.array_equal(nan_a, np.isnan(b)):
        return False
    masked_a = np.where(nan_a, 0.0, a)
    masked_b = np.where(nan_a, 0.0, b)
    return masked_a.tobytes() == masked_b.tobytes()


class TestPredictLinearBatch:
    """Stacked predictions are bit-for-bit the per-fit accumulation."""

    @FAST
    @given(data=st.data(),
           m=st.integers(min_value=1, max_value=6),
           k=st.integers(min_value=0, max_value=5),
           n=st.integers(min_value=1, max_value=12))
    def test_rows_match_scalar_path_on_fit_domain(self, data, m, k, n):
        """Finite intercepts/coefficients (every successful fit's domain):
        fully bit-for-bit, even against huge/tiny/signed-zero columns and
        overflow-to-infinity accumulations."""
        intercepts = np.array(
            [data.draw(FINITE) for _ in range(m)], dtype=float)
        coefficients = np.array(
            [[data.draw(FINITE) for _ in range(k)] for _ in range(m)],
            dtype=float).reshape(m, k)
        stacked = np.array(
            [[[data.draw(FINITE) for _ in range(k)] for _ in range(n)]
             for _ in range(m)], dtype=float).reshape(m, n, k)
        with np.errstate(all="ignore"):
            batch = predict_linear_batch(intercepts, coefficients, stacked)
            for i in range(m):
                fit = LinearFit(intercept=float(intercepts[i]),
                                coefficients=coefficients[i],
                                residual_sum_of_squares=0.0, rank=k,
                                singular=False)
                scalar = predict_linear(fit, stacked[i])
                assert _bit_equal(batch[i], scalar)

    @FAST
    @given(data=st.data(),
           m=st.integers(min_value=1, max_value=6),
           k=st.integers(min_value=0, max_value=5),
           n=st.integers(min_value=1, max_value=12))
    def test_rows_match_scalar_path_adversarial(self, data, m, k, n):
        """NaN/infinity inputs: NaN positions and all non-NaN values still
        match bit for bit (payloads may differ -- see the documented
        two-NaN-addition caveat), and the *errors* derived from such rows
        are exactly equal (TestResidualBackends covers that end)."""
        intercepts = np.array(
            [data.draw(ADVERSARIAL) for _ in range(m)], dtype=float)
        coefficients = np.array(
            [[data.draw(ADVERSARIAL) for _ in range(k)] for _ in range(m)],
            dtype=float).reshape(m, k)
        stacked = np.array(
            [[[data.draw(ADVERSARIAL) for _ in range(k)] for _ in range(n)]
             for _ in range(m)], dtype=float).reshape(m, n, k)
        with np.errstate(all="ignore"):
            batch = predict_linear_batch(intercepts, coefficients, stacked)
            for i in range(m):
                fit = LinearFit(intercept=float(intercepts[i]),
                                coefficients=coefficients[i],
                                residual_sum_of_squares=0.0, rank=k,
                                singular=False)
                scalar = predict_linear(fit, stacked[i])
                assert _bit_equal_modulo_nan_payload(batch[i], scalar)

    def test_signed_zero_columns_survive(self):
        stacked = np.array([[[-0.0], [0.0]], [[0.0], [-0.0]]])
        batch = predict_linear_batch(np.array([0.0, -0.0]),
                                     np.array([[1.0], [1.0]]), stacked)
        fit = LinearFit(intercept=0.0, coefficients=np.array([1.0]),
                        residual_sum_of_squares=0.0, rank=1, singular=False)
        for i in range(2):
            assert _bit_equal(batch[i], predict_linear(fit.__class__(
                intercept=float(np.array([0.0, -0.0])[i]),
                coefficients=np.array([1.0]),
                residual_sum_of_squares=0.0, rank=1, singular=False),
                stacked[i]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            predict_linear_batch(np.zeros(2), np.zeros((2, 1)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            predict_linear_batch(np.zeros(3), np.zeros((2, 1)),
                                 np.zeros((2, 4, 1)))
        with pytest.raises(ValueError):
            predict_linear_batch(np.zeros(2), np.zeros((2, 2)),
                                 np.zeros((2, 4, 1)))


class TestRelativeRmseRows:
    """Row-stacked residual reduction is bit-for-bit the scalar metric."""

    @FAST
    @given(data=st.data(),
           m=st.integers(min_value=1, max_value=6),
           n=st.integers(min_value=1, max_value=40),
           normalization=st.floats(min_value=1e-6, max_value=1e6))
    def test_rows_match_scalar_metric(self, data, m, n, normalization):
        y = np.array([data.draw(FINITE) for _ in range(n)], dtype=float)
        rows = np.array([[data.draw(ADVERSARIAL) for _ in range(n)]
                         for _ in range(m)], dtype=float)
        batch = relative_rmse_rows(y, rows, normalization)
        for i in range(m):
            scalar = relative_rmse(y, rows[i], normalization)
            assert _bit_equal(np.array([batch[i]]), np.array([scalar]))

    def test_nonfinite_rows_are_inf(self):
        y = np.array([1.0, 2.0])
        rows = np.array([[1.0, np.nan], [np.inf, 2.0], [1.0, 2.0]])
        errors = relative_rmse_rows(y, rows, 1.0)
        assert errors[0] == np.inf and errors[1] == np.inf
        assert errors[2] == relative_rmse(y, rows[2], 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_rmse_rows(np.ones(3), np.ones((2, 4)), 1.0)
        with pytest.raises(ValueError):
            relative_rmse_rows(np.ones(3), np.ones(3), 1.0)
        with pytest.raises(ValueError):
            relative_rmse_rows(np.ones(3), np.ones((2, 3)), 0.0)


class TestResidualBackends:
    """The registered "scalar" and "batched" backends agree bit for bit."""

    def _group(self, rng, m, k, n):
        y = rng.normal(size=n)
        fits = []
        matrices = []
        for _ in range(m):
            matrix = rng.normal(size=(n, k)) * rng.choice(
                [1.0, 1e-120, 1e120], size=(1, k) if k else (1, 0))
            fit = fit_linear(matrix, y)
            assert fit is not None
            fits.append(fit)
            matrices.append(matrix)
        return y, fits, matrices

    @pytest.mark.parametrize("k", [0, 1, 3, 7])
    def test_backends_agree_on_fitted_groups(self, k):
        rng = np.random.default_rng(k)
        y, fits, matrices = self._group(rng, 5, k, 30)
        scalar = ScalarResidualBackend(y, 2.5)
        batched = BatchedResidualBackend(y, 2.5)
        scalar_errors = scalar.errors(fits, matrices)
        batched_errors = batched.errors(fits, matrices)
        assert scalar_errors == batched_errors
        for fit, matrix, expected in zip(fits, matrices, scalar_errors):
            assert batched.error(fit, matrix) == expected
        if k and len(fits) > 1:
            assert batched.n_batched_passes == 1
            assert batched.n_batched_fits == len(fits)

    def test_nan_columns_score_identically(self):
        """Test-set matrices may contain NaN (blow-up columns): both
        backends must report the exact same errors (inf for NaN rows)."""
        rng = np.random.default_rng(9)
        y = rng.normal(size=20)
        matrices = []
        fits = []
        for case in range(4):
            matrix = rng.normal(size=(20, 2))
            fit = fit_linear(matrix, y)
            assert fit is not None
            if case % 2:
                matrix = matrix.copy()
                matrix[case, case % 2] = np.nan
            fits.append(fit)
            matrices.append(matrix)
        scalar = ScalarResidualBackend(y, 1.5)
        batched = BatchedResidualBackend(y, 1.5)
        scalar_errors = scalar.errors(fits, matrices)
        batched_errors = batched.errors(fits, matrices)
        assert scalar_errors == batched_errors
        assert scalar_errors[1] == float("inf")
        assert scalar_errors[3] == float("inf")
        assert np.isfinite(scalar_errors[0]) and np.isfinite(scalar_errors[2])

    def test_registered_names(self):
        assert set(backend_names("residual")) >= {"scalar", "batched"}
        with pytest.raises(ValueError):
            CaffeineSettings(residual_backend="gpu")


class TestEvaluatorResidualEquivalence:
    """Population evaluation is identical under both residual backends."""

    def test_population_bitwise_equal(self, rational_train, fast_settings):
        generator = ExpressionGenerator(3, fast_settings,
                                        rng=np.random.default_rng(17))
        population = [Individual(bases=generator.random_basis_functions())
                      for _ in range(25)]
        clones = [ind.clone() for ind in population]
        batched = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(residual_backend="batched"))
        scalar = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(residual_backend="scalar"))
        batched.evaluate_population(population)
        scalar.evaluate_population(clones)
        assert batched.residual_backend.name == "batched"
        assert scalar.residual_backend.name == "scalar"
        assert batched.residual_backend.n_batched_fits > 0
        for a, b in zip(population, clones):
            assert a.error == b.error
            assert a.complexity == b.complexity
            assert (a.fit is None) == (b.fit is None)
            if a.fit is not None:
                assert a.fit.intercept == b.fit.intercept
                assert np.array_equal(a.fit.coefficients, b.fit.coefficients)
                assert a.fit.residual_sum_of_squares == \
                    b.fit.residual_sum_of_squares


class TestAdaptiveBudgets:
    """The default LRU budgets scale with population; explicit values hold."""

    def test_defaults_scale_with_population(self):
        small = CaffeineSettings()
        assert small.resolved_basis_cache_size() == small.basis_cache_size
        assert small.resolved_gram_pool_size() == small.gram_pool_size
        assert small.resolved_kernel_cache_size() == small.kernel_cache_size
        big = CaffeineSettings(population_size=2000)
        assert big.resolved_basis_cache_size() > big.basis_cache_size
        assert big.resolved_gram_pool_size() > big.gram_pool_size
        assert big.resolved_kernel_cache_size() > big.kernel_cache_size

    def test_adaptive_budgets_flag_pins_defaults_exactly(self):
        """A hard cap equal to a class default is expressible: turning the
        flag off pins every budget verbatim (a dataclass cannot tell an
        untouched default from the same number typed deliberately)."""
        pinned = CaffeineSettings(population_size=2000,
                                  adaptive_cache_budgets=False)
        assert pinned.resolved_basis_cache_size() == pinned.basis_cache_size
        assert pinned.resolved_gram_pool_size() == pinned.gram_pool_size
        assert pinned.resolved_kernel_cache_size() == pinned.kernel_cache_size

    def test_explicit_values_are_honored_exactly(self):
        settings = CaffeineSettings(population_size=2000, basis_cache_size=2,
                                    gram_pool_size=3, kernel_cache_size=0)
        assert settings.resolved_basis_cache_size() == 2
        assert settings.resolved_gram_pool_size() == 3
        assert settings.resolved_kernel_cache_size() == 0
        disabled = CaffeineSettings(population_size=2000, basis_cache_size=0,
                                    gram_pool_size=0)
        assert disabled.resolved_basis_cache_size() == 0
        assert disabled.resolved_gram_pool_size() == 0

    def test_evaluator_and_compiler_use_resolved_budgets(self, rational_train):
        settings = CaffeineSettings(population_size=1000)
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        settings)
        assert evaluator.cache.max_entries == \
            settings.resolved_basis_cache_size()
        assert evaluator.gram_pool.max_pairs == \
            settings.resolved_gram_pool_size()
        assert evaluator._compiler.max_kernels == \
            settings.resolved_kernel_cache_size()
        with pytest.raises(ValueError):
            CaffeineSettings(kernel_cache_size=-1)


class TestEngineResidualEquivalence:
    """Fixed seed => identical trade-offs with the batched pass on or off."""

    def test_fixed_seed_engine_equality(self, rational_train, rational_test):
        base = CaffeineSettings(population_size=20, n_generations=4,
                                random_seed=7)
        batched = run_caffeine(rational_train, rational_test, base)
        scalar = run_caffeine(rational_train, rational_test,
                              base.copy(residual_backend="scalar"))
        assert [m.expression() for m in batched.tradeoff] == \
            [m.expression() for m in scalar.tradeoff]
        assert [m.train_error for m in batched.tradeoff] == \
            [m.train_error for m in scalar.tradeoff]
        assert [m.test_error for m in batched.tradeoff] == \
            [m.test_error for m in scalar.tradeoff]

    def test_batched_test_scoring_matches_scalar_freeze(self, rational_train,
                                                        rational_test):
        """The engine's batched test-set scoring equals per-model scoring."""
        from repro.data.metrics import q_tc

        base = CaffeineSettings(population_size=20, n_generations=3,
                                random_seed=3)
        result = run_caffeine(rational_train, rational_test, base)
        assert result.n_models >= 1
        for model in result.tradeoff:
            individual = Individual(bases=list(model.bases),
                                    fit=model.fit,
                                    normalization=model.normalization)
            scalar = q_tc(rational_test.y,
                          individual.predict(rational_test.X),
                          model.normalization)
            assert model.test_error == scalar

    def test_rescore_models_matches_per_model_scoring(self, rational_train,
                                                      rational_test):
        from repro.core.report import rescore_models, rescore_table
        from repro.data.metrics import q_tc

        base = CaffeineSettings(population_size=20, n_generations=3,
                                random_seed=13)
        result = run_caffeine(rational_train, rational_test, base)
        models = list(result.tradeoff)
        assert models
        batched = rescore_models(models, rational_test.X, rational_test.y)
        scalar = rescore_models(models, rational_test.X, rational_test.y,
                                backend="scalar")
        assert batched == scalar
        for model, fresh in zip(models, batched):
            expected = q_tc(rational_test.y,
                            model.predict_transformed(rational_test.X),
                            model.normalization)
            assert fresh == expected
        table = rescore_table(result.tradeoff, rational_test.X,
                              rational_test.y, title="fresh data")
        assert "fresh err %" in table and "fresh data" in table
        assert len(table.splitlines()) == 2 + len(models)

    def test_batch_test_errors_groups_mixed_widths(self, rational_train,
                                                   rational_test,
                                                   fast_settings):
        generator = ExpressionGenerator(3, fast_settings,
                                        rng=np.random.default_rng(5))
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        individuals = [Individual(bases=generator.random_basis_functions(n))
                       for n in (1, 2, 3, 2, 1)]
        evaluator.evaluate_population(individuals)
        fitted = [ind for ind in individuals if ind.is_feasible]
        assert len(fitted) >= 2
        batched = batch_test_errors(fitted, rational_test.X, rational_test.y,
                                    evaluator.normalization)
        scalar = batch_test_errors(fitted, rational_test.X, rational_test.y,
                                   evaluator.normalization, backend="scalar")
        assert batched == scalar
        with pytest.raises(ValueError):
            batch_test_errors([Individual(bases=generator
                                          .random_basis_functions(1))],
                              rational_test.X, rational_test.y, 1.0)
