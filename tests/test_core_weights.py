"""Unit tests for weight terminals and their transform/mutation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import (
    Weight,
    cauchy_mutated_value,
    format_number,
    inverse_transform_value,
    transform_stored_value,
)


class TestTransform:
    def test_zero_maps_to_zero(self):
        assert transform_stored_value(0.0) == 0.0

    def test_positive_range_endpoints(self):
        bound = 10.0
        assert transform_stored_value(2 * bound, bound) == pytest.approx(1e10)
        assert transform_stored_value(1e-9, bound) == pytest.approx(1e-10, rel=1e-6)

    def test_negative_range_endpoints(self):
        bound = 10.0
        assert transform_stored_value(-2 * bound, bound) == pytest.approx(-1e10)
        assert transform_stored_value(-1e-9, bound) == pytest.approx(-1e-10, rel=1e-6)

    def test_midpoint_maps_to_one(self):
        assert transform_stored_value(10.0, 10.0) == pytest.approx(1.0)
        assert transform_stored_value(-10.0, 10.0) == pytest.approx(-1.0)

    def test_out_of_range_stored_is_clipped(self):
        assert transform_stored_value(50.0, 10.0) == pytest.approx(1e10)

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            transform_stored_value(1.0, exponent_bound=0.0)

    def test_inverse_round_trip(self):
        for value in (1e-7, 3.5, -42.0, -1e8):
            stored = inverse_transform_value(value)
            assert transform_stored_value(stored) == pytest.approx(value, rel=1e-9)

    def test_inverse_of_zero(self):
        assert inverse_transform_value(0.0) == 0.0


class TestWeight:
    def test_value_respects_bound(self):
        weight = Weight(stored=25.0, exponent_bound=10.0)
        assert weight.stored == pytest.approx(20.0)
        assert weight.value == pytest.approx(1e10)

    def test_from_value(self):
        weight = Weight.from_value(186.6)
        assert weight.value == pytest.approx(186.6, rel=1e-9)

    def test_random_within_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            weight = Weight.random(rng)
            assert -20.0 <= weight.stored <= 20.0
            assert weight.value == 0.0 or 1e-10 <= abs(weight.value) <= 1e10

    def test_copy_is_independent(self):
        weight = Weight(stored=5.0)
        copy = weight.copy()
        copy.stored = 1.0
        assert weight.stored == 5.0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            Weight(stored=1.0, exponent_bound=-1.0)


class TestCauchyMutation:
    def test_mutation_stays_in_range(self):
        rng = np.random.default_rng(1)
        weight = Weight(stored=0.0)
        for _ in range(200):
            weight = weight.mutated(rng)
            assert -20.0 <= weight.stored <= 20.0

    def test_mutation_changes_value_eventually(self):
        rng = np.random.default_rng(2)
        weight = Weight(stored=3.0)
        mutated = [weight.mutated(rng).stored for _ in range(20)]
        assert any(abs(m - 3.0) > 1e-6 for m in mutated)

    def test_heavy_tail_produces_large_jumps(self):
        """Cauchy mutation must occasionally make jumps far beyond the scale."""
        rng = np.random.default_rng(3)
        jumps = [abs(cauchy_mutated_value(0.0, 1.0, rng)) for _ in range(500)]
        assert max(jumps) > 5.0

    def test_invalid_scale(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            cauchy_mutated_value(0.0, 0.0, rng)

    def test_original_not_modified(self):
        rng = np.random.default_rng(4)
        weight = Weight(stored=2.0)
        weight.mutated(rng)
        assert weight.stored == 2.0


class TestFormatting:
    def test_moderate_numbers_plain(self):
        assert format_number(90.5) == "90.5"
        assert format_number(0.04) == "0.04"

    def test_extreme_numbers_scientific(self):
        assert "e" in format_number(2.36e7)
        assert "e" in format_number(-2.05e-3 / 10)

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_render_matches_format(self):
        weight = Weight.from_value(190.6)
        assert weight.render() == format_number(190.6)


class TestTransformClipBitEquivalence:
    """The branch-based clip in transform_stored_value replicates np.clip
    bit for bit -- the property its docstring promises."""

    @staticmethod
    def _np_clip_reference(stored, bound):
        """The pre-optimization implementation (np.clip-based)."""
        clipped = float(np.clip(stored, -2.0 * bound, 2.0 * bound))
        if clipped == 0.0:
            return 0.0
        if clipped > 0:
            return 10.0 ** (clipped - bound)
        return -(10.0 ** (-clipped - bound))

    def test_matches_np_clip_reference_bitwise(self):
        import math

        from hypothesis import given, settings as hyp_settings
        from hypothesis import strategies as st

        edge_values = [0.0, -0.0, 20.0, -20.0, 20.000000001, -20.000000001,
                       1e-300, -1e-300, float("nan"), float("inf"),
                       float("-inf"), math.nextafter(0.0, 1.0),
                       math.nextafter(0.0, -1.0)]

        # bound <= 300 keeps 10**bound finite: larger bounds overflow in
        # Python pow identically in both implementations (pre-existing).
        @hyp_settings(max_examples=300, deadline=None)
        @given(stored=st.one_of(st.sampled_from(edge_values),
                                st.floats(width=64, allow_nan=True,
                                          allow_infinity=True)),
               bound=st.one_of(st.just(10.0),
                               st.floats(min_value=0.5, max_value=300.0)))
        def run(stored, bound):
            ours = transform_stored_value(stored, bound)
            reference = self._np_clip_reference(stored, bound)
            assert np.float64(ours).tobytes() == \
                np.float64(reference).tobytes(), (stored, bound)

        run()
