"""SymbolicRegressor: sklearn protocol, predictions, shim equality."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SymbolicRegressor
from repro.core.engine import run_caffeine
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset

SETTINGS = CaffeineSettings(population_size=16, n_generations=3,
                            random_seed=4)


def _data(seed: int = 0, n: int = 50):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(n, 3))
    y = 3.0 + 2.0 * X[:, 0] / X[:, 1] + 0.5 * X[:, 2]
    return X, y


class TestSklearnProtocol:
    def test_get_set_params_round_trip(self):
        est = SymbolicRegressor(population_size=33, n_generations=7)
        params = est.get_params()
        assert params["population_size"] == 33
        assert params["n_generations"] == 7
        clone = SymbolicRegressor(**params)  # sklearn.clone does exactly this
        assert clone.get_params() == params
        clone.set_params(population_size=44, random_seed=9)
        assert clone.population_size == 44
        assert clone.random_seed == 9
        with pytest.raises(ValueError, match="invalid parameter"):
            clone.set_params(n_estimators=10)

    def test_unfitted_access_raises(self):
        est = SymbolicRegressor()
        with pytest.raises(RuntimeError, match="not fitted"):
            est.predict(np.zeros((2, 3)))
        with pytest.raises(RuntimeError, match="not fitted"):
            est.expression()

    def test_bad_model_selection_rejected_at_fit(self):
        X, y = _data()
        with pytest.raises(ValueError, match="model_selection"):
            SymbolicRegressor(model_selection="best",
                              settings=SETTINGS).fit(X, y)

    def test_predict_shape_validation(self):
        X, y = _data()
        est = SymbolicRegressor(settings=SETTINGS).fit(X, y)
        with pytest.raises(ValueError, match="n_samples"):
            est.predict(np.zeros((4, 7)))


class TestFitPredict:
    def test_fit_sets_attributes_and_predicts(self):
        X, y = _data()
        est = SymbolicRegressor(settings=SETTINGS).fit(X, y)
        assert est.n_features_in_ == 3
        assert est.feature_names_in_ == ("x0", "x1", "x2")
        assert len(est.pareto_front_) >= 1
        predictions = est.predict(X)
        assert predictions.shape == (50,)
        assert np.isfinite(predictions).all()
        # A structured search on a smooth target should beat the mean.
        assert est.score(X, y) > 0.5
        assert isinstance(est.expression(), str)

    def test_validation_data_enables_test_front(self):
        X, y = _data(0)
        X_test, y_test = _data(1)
        est = SymbolicRegressor(settings=SETTINGS).fit(
            X, y, X_test=X_test, y_test=y_test)
        assert len(est.test_pareto_front_) >= 1
        assert np.isfinite(est.best_model_.test_error)

    def test_feature_names_flow_into_expressions(self):
        X, y = _data()
        est = SymbolicRegressor(settings=SETTINGS,
                                feature_names=("vgs", "ids", "vds"))
        est.fit(X, y)
        assert est.feature_names_in_ == ("vgs", "ids", "vds")
        used = set()
        for model in est.pareto_front_:
            used.update(model.used_variables())
        assert used <= {"vgs", "ids", "vds"}

    def test_log10_target_predicts_in_original_domain(self):
        X, y = _data()
        y = 10.0 ** (0.1 * y)  # strictly positive, wide-range target
        est = SymbolicRegressor(settings=SETTINGS, log10_target=True)
        est.fit(X, y)
        predictions = est.predict(X)
        assert (predictions > 0).all()  # back-transformed via 10^(...)

    def test_column_cache_path_does_not_change_models(self, tmp_path):
        X, y = _data()
        plain = SymbolicRegressor(settings=SETTINGS).fit(X, y)
        cached = SymbolicRegressor(
            settings=SETTINGS,
            column_cache_path=str(tmp_path / "cols.cache")).fit(X, y)
        warm = SymbolicRegressor(
            settings=SETTINGS,
            column_cache_path=str(tmp_path / "cols.cache")).fit(X, y)
        for other in (cached, warm):
            assert ([m.train_error for m in plain.pareto_front_]
                    == [m.train_error for m in other.pareto_front_])


class TestShimEquality:
    def test_estimator_matches_legacy_run_caffeine(self):
        """Fixed-seed bit-for-bit equality of the facade and the shim."""
        X, y = _data()
        X_test, y_test = _data(1)
        est = SymbolicRegressor(settings=SETTINGS).fit(
            X, y, X_test=X_test, y_test=y_test)

        train = Dataset(X, y, variable_names=("x0", "x1", "x2"))
        test = Dataset(X_test, y_test, variable_names=("x0", "x1", "x2"))
        legacy = run_caffeine(train, test, settings=SETTINGS)

        assert ([(m.train_error, m.test_error, m.complexity, m.expression())
                 for m in legacy.tradeoff]
                == [(m.train_error, m.test_error, m.complexity,
                     m.expression())
                    for m in est.pareto_front_])
        assert (legacy.best_model().expression()
                == est.best_model_.expression())

    def test_individual_params_build_matching_settings(self):
        X, y = _data()
        est = SymbolicRegressor(population_size=16, n_generations=3,
                                random_seed=4, max_basis_functions=15,
                                max_tree_depth=8).fit(X, y)
        reference = SymbolicRegressor(settings=SETTINGS).fit(X, y)
        assert ([m.train_error for m in est.pareto_front_]
                == [m.train_error for m in reference.pareto_front_])
