"""The fault-injection harness and the Session's fault tolerance.

Unit tests of :mod:`repro.core.faults` (spec grammar, arming, matching,
fire budgets, the env-var channel) plus the behaviors it exists to prove:
injected evaluator exceptions, killed workers, stalled problems past their
timeout, corrupt cache files -- every problem still ends in a result or a
structured :class:`~repro.core.session.ProblemFailure`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import InjectedFault, ProblemFailure
from repro.core import faults
from repro.core.cache_store import ColumnCacheStore
from repro.core.engine import run_caffeine
from repro.core.problem import Problem
from repro.core.session import Session, SessionCallback
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset

SETTINGS = CaffeineSettings(population_size=16, n_generations=2,
                            random_seed=3)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def _problems(names=("t1", "t2")):
    rng = np.random.default_rng(0)
    X = rng.uniform(0.5, 2.0, size=(40, 3))
    targets = {"t1": 3 + 2 * X[:, 0] / X[:, 1],
               "t2": X[:, 2] ** 2 + X[:, 0],
               "t3": 1.0 + X[:, 1] * X[:, 2]}
    return [Problem(train=Dataset(X, targets[name], ("a", "b", "c"),
                                  target_name=name))
            for name in names]


def _front(result):
    return [(m.train_error, m.complexity, m.expression())
            for m in result.tradeoff]


class _Recorder(SessionCallback):
    def __init__(self):
        self.retries = []
        self.errors = []

    def on_problem_retry(self, problem, failure, delay):
        self.retries.append((problem.name, failure.phase, failure.attempts))

    def on_problem_error(self, problem, failure):
        self.errors.append((problem.name, failure.phase))


class TestSpecGrammar:
    def test_parse_point_conditions_times_delay(self):
        specs = faults.parse_faults(
            "worker.kill:problem=PM:attempt=0, "
            "fit.exception:times=3, problem.stall:delay=1.5, "
            "lock.timeout:times=inf")
        assert [s.point for s in specs] == [
            "worker.kill", "fit.exception", "problem.stall", "lock.timeout"]
        assert specs[0].conditions == {"problem": "PM", "attempt": "0"}
        assert specs[0].times == 1
        assert specs[1].times == 3
        assert specs[2].delay == 1.5
        assert specs[3].times is None

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="empty point"):
            faults.parse_faults(":problem=PM")
        with pytest.raises(ValueError, match="key=value"):
            faults.parse_faults("worker.kill:justakey")
        with pytest.raises(ValueError, match="times"):
            faults.parse_faults("worker.kill:times=0")
        with pytest.raises(ValueError, match="delay"):
            faults.parse_faults("problem.stall:delay=-1")
        assert faults.parse_faults("") == []

    def test_settings_validate_rejects_bad_spec(self):
        with pytest.raises(ValueError, match="fault_injection"):
            CaffeineSettings(fault_injection="worker.kill:nonsense")

    def test_settings_accept_good_spec(self):
        settings = CaffeineSettings(fault_injection="fit.exception:times=2")
        assert settings.fault_injection == "fit.exception:times=2"


class TestFireSemantics:
    def test_fire_consumes_times_budget(self):
        faults.install("p.x", times=2)
        assert faults.fire("p.x") is not None
        assert faults.fire("p.x") is not None
        assert faults.fire("p.x") is None  # budget spent

    def test_conditions_are_string_compared(self):
        faults.install("p.x", problem="PM", attempt=0)
        assert faults.fire("p.x", problem="PM", attempt=1) is None
        assert faults.fire("p.x", problem="SRp", attempt=0) is None
        assert faults.fire("p.x", problem="PM") is None  # key missing
        assert faults.fire("p.x", problem="PM", attempt=0) is not None

    def test_install_from_string_is_idempotent(self):
        faults.install_from_string("p.x:times=inf")
        faults.install_from_string("p.x:times=inf")
        assert len(faults.active_specs()) == 1

    def test_clear_disarms(self):
        faults.install("p.x")
        faults.clear()
        assert faults.active_specs() == ()
        assert faults.fire("p.x") is None

    def test_env_var_arms(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "p.env:times=1")
        faults.clear()  # forget the memo so the env var is re-read
        assert faults.fire("p.env") is not None
        assert faults.fire("p.env") is None

    def test_raise_point_raises_injected_fault(self):
        faults.install("p.x")
        with pytest.raises(InjectedFault, match="p.x"):
            faults.raise_point("p.x")
        faults.raise_point("p.x")  # budget spent: no-op

    def test_corrupt_file_point_truncates(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 100)
        faults.install("p.corrupt")
        assert faults.corrupt_file_point("p.corrupt", path)
        assert path.stat().st_size == 50


class TestSerialFaultTolerance:
    def test_fit_exception_propagates_through_legacy_shim(self):
        problem = _problems(("t1",))[0]
        settings = SETTINGS.copy(fault_injection="fit.exception")
        with pytest.raises(InjectedFault):
            run_caffeine(problem.train, settings=settings)

    def test_serial_retry_recovers_and_matches_clean_run(self):
        problem = _problems(("t1",))[0]
        clean = Session([problem], settings=SETTINGS).run()
        faults.clear()
        recorder = _Recorder()
        settings = SETTINGS.copy(fault_injection="fit.exception:times=1")
        outcome = Session([problem], settings=settings, retries=1,
                          retry_backoff=0.0,
                          callbacks=[recorder]).run()
        assert outcome.complete
        assert recorder.retries == [("t1", "exception", 1)]
        assert recorder.errors == []
        assert _front(outcome["t1"]) == _front(clean["t1"])

    def test_serial_terminal_failure_is_structured(self):
        problems = _problems(("t1", "t2"))
        recorder = _Recorder()
        settings = SETTINGS.copy(
            fault_injection="fit.exception:times=inf")
        # Injection is condition-free, so it also fires for t2 -- but each
        # engine arms per settings string once per process, and times=inf
        # keeps firing: BOTH problems fail, each with its own record.
        outcome = Session(problems, settings=settings, retries=0,
                          callbacks=[recorder]).run()
        assert outcome.results == {}
        assert set(outcome.failures) == {"t1", "t2"}
        failure = outcome.failures["t1"]
        assert isinstance(failure, ProblemFailure)
        assert failure.phase == "exception"
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 1
        assert "fit.exception" in failure.message
        assert "InjectedFault" in failure.traceback
        assert recorder.errors == [("t1", "exception"), ("t2", "exception")]
        with pytest.raises(KeyError, match="failed terminally"):
            outcome["t1"]
        with pytest.raises(RuntimeError, match="2 problem"):
            outcome.raise_failures()

    def test_failure_policy_raise_propagates(self):
        problem = _problems(("t1",))[0]
        settings = SETTINGS.copy(fault_injection="fit.exception")
        with pytest.raises(InjectedFault):
            Session([problem], settings=settings, retries=3,
                    failure_policy="raise").run()


class TestParallelFaultTolerance:
    def test_killed_worker_is_retried_and_result_matches(self):
        problems = _problems(("t1", "t2"))
        clean = Session(problems, settings=SETTINGS).run()
        settings = SETTINGS.copy(
            fault_injection="worker.kill:problem=t1:attempt=0")
        recorder = _Recorder()
        outcome = Session(problems, settings=settings, jobs=2, retries=1,
                          retry_backoff=0.01, callbacks=[recorder]).run()
        assert outcome.complete
        assert recorder.retries == [("t1", "worker-crash", 1)]
        for name in ("t1", "t2"):
            assert _front(outcome[name]) == _front(clean[name])

    def test_worker_exception_reported_with_traceback(self):
        problems = _problems(("t1", "t2"))
        settings = SETTINGS.copy(
            fault_injection="worker.exception:problem=t2")
        outcome = Session(problems, settings=settings, jobs=2, retries=0,
                          fallback_serial=False).run()
        assert set(outcome.results) == {"t1"}
        failure = outcome.failures["t2"]
        assert failure.phase == "exception"
        assert failure.error_type == "InjectedFault"
        assert "worker.exception" in failure.traceback

    def test_serial_fallback_rescues_flaky_worker(self):
        # The kill fires on every worker attempt (times=inf, any attempt),
        # so only the in-process fallback -- which never passes through
        # _worker_main's kill point -- can finish the problem.
        problems = _problems(("t1", "t2"))
        clean = Session(problems, settings=SETTINGS).run()
        settings = SETTINGS.copy(
            fault_injection="worker.kill:problem=t1:times=inf")
        outcome = Session(problems, settings=settings, jobs=2, retries=1,
                          retry_backoff=0.01, fallback_serial=True).run()
        assert outcome.complete
        assert _front(outcome["t1"]) == _front(clean["t1"])

    def test_sweep_survives_kill_timeout_and_corrupt_cache(self, tmp_path):
        """The acceptance sweep: one killed worker, one problem stalled
        past its timeout, one corrupt shared-cache file -- every problem
        still returns a result or a structured failure."""
        problems = _problems(("t1", "t2", "t3"))
        clean = Session(problems, settings=SETTINGS).run()

        cache_path = tmp_path / "columns.cache"
        # Valid magic/version but garbage checksum: byte-level damage that
        # loaders must quarantine, not crash on.
        cache_path.write_bytes(ColumnCacheStore.MAGIC + b"\n1\n"
                               + b"0" * 64 + b"\nnot-the-payload")
        settings = SETTINGS.copy(fault_injection=(
            "worker.kill:problem=t1:attempt=0, "
            "problem.stall:problem=t2:delay=30:times=inf"))
        recorder = _Recorder()
        outcome = Session(problems, settings=settings, jobs=3,
                          column_cache_path=str(cache_path),
                          timeout=1.0, retries=1, retry_backoff=0.01,
                          fallback_serial=False,
                          callbacks=[recorder]).run()

        # Every problem is accounted for: results for t1 (after its killed
        # worker was retried) and t3, a structured timeout failure for t2.
        assert set(outcome.results) == {"t1", "t3"}
        assert set(outcome.failures) == {"t2"}
        failure = outcome.failures["t2"]
        assert failure.phase == "timeout"
        assert failure.attempts == 2  # first try + one retry, both stalled
        assert ("t2", "timeout") in recorder.errors
        assert not outcome.complete

        # The surviving results are bit-identical to an undisturbed run.
        assert _front(outcome["t1"]) == _front(clean["t1"])
        assert _front(outcome["t3"]) == _front(clean["t3"])

        # The damaged cache file was quarantined by the first loader and
        # replaced by a fresh valid store (loading it warns about nothing).
        assert (tmp_path / "columns.cache.corrupt-0").exists()
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            ColumnCacheStore(cache_path).load()
