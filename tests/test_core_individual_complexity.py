"""Tests for individuals, the linear fit of outer weights, and Eq. (1) complexity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.complexity import (
    basis_function_complexity,
    model_complexity,
    vc_cost,
)
from repro.core.expression import ProductTerm
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual, evaluate_basis_matrix
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo


@pytest.fixture
def settings():
    return CaffeineSettings(population_size=10, n_generations=2, random_seed=0)


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0.5, 2.0, size=(60, 3))
    y = 1.0 + 2.0 * X[:, 0] / X[:, 1] + 0.3 * X[:, 2]
    return X, y


def ratio_term():
    return ProductTerm(vc=VariableCombo((1, -1, 0)))


def linear_term(index):
    exponents = [0, 0, 0]
    exponents[index] = 1
    return ProductTerm(vc=VariableCombo(tuple(exponents)))


class TestComplexity:
    def test_vc_cost_scales_with_exponents(self):
        assert vc_cost(VariableCombo((1, 0, -2, 1)), 0.25) == pytest.approx(1.0)
        assert vc_cost(VariableCombo((0, 0)), 0.25) == 0.0
        with pytest.raises(ValueError):
            vc_cost(VariableCombo((1,)), -1.0)

    def test_basis_function_complexity_components(self):
        term = ratio_term()
        value = basis_function_complexity(term, basis_function_cost=10.0,
                                          vc_exponent_cost=0.25)
        # wb (10) + nnodes (product term + VC = 2) + 0.25 * 2 exponents
        assert value == pytest.approx(10.0 + 2.0 + 0.5)

    def test_constant_model_has_zero_complexity(self, settings):
        assert model_complexity([], settings) == 0.0

    def test_complexity_additive_over_bases(self, settings):
        one = model_complexity([ratio_term()], settings)
        two = model_complexity([ratio_term(), ratio_term()], settings)
        assert two == pytest.approx(2.0 * one)

    def test_more_exponents_cost_more(self, settings):
        simple = model_complexity([ProductTerm(vc=VariableCombo((1, 0, 0)))], settings)
        heavy = model_complexity([ProductTerm(vc=VariableCombo((2, -2, 1)))], settings)
        assert heavy > simple


class TestBasisMatrix:
    def test_shapes(self, data):
        X, _ = data
        matrix = evaluate_basis_matrix([ratio_term(), linear_term(2)], X)
        assert matrix.shape == (X.shape[0], 2)
        empty = evaluate_basis_matrix([], X)
        assert empty.shape == (X.shape[0], 0)

    def test_values_match_direct_evaluation(self, data):
        X, _ = data
        matrix = evaluate_basis_matrix([ratio_term()], X)
        np.testing.assert_allclose(matrix[:, 0], X[:, 0] / X[:, 1])

    def test_blowups_become_nan(self):
        X = np.array([[1e20, 1e-20, 1.0]])
        term = ProductTerm(vc=VariableCombo((3, -3, 0)))
        matrix = evaluate_basis_matrix([term], X)
        assert np.isnan(matrix).all()


class TestIndividualEvaluation:
    def test_exact_model_reaches_zero_error(self, settings, data):
        X, y = data
        individual = Individual(bases=[ratio_term(), linear_term(2)])
        individual.evaluate(X, y, settings)
        assert individual.is_feasible
        assert individual.error < 1e-8
        assert individual.fit.intercept == pytest.approx(1.0, abs=1e-6)
        np.testing.assert_allclose(individual.fit.coefficients, [2.0, 0.3],
                                   atol=1e-6)

    def test_constant_individual(self, settings, data):
        X, y = data
        individual = Individual(bases=[])
        individual.evaluate(X, y, settings)
        assert individual.is_feasible
        assert individual.complexity == 0.0
        assert individual.fit.intercept == pytest.approx(np.mean(y))
        # RMS of a centered fit relative to the range: well below 100 %.
        assert 0.0 < individual.error < 0.6

    def test_infeasible_individual_when_basis_blows_up(self, settings):
        X = np.array([[0.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        y = np.array([1.0, 2.0])
        individual = Individual(bases=[ProductTerm(vc=VariableCombo((-1, 0, 0)))])
        individual.evaluate(X, y, settings)
        assert not individual.is_feasible
        assert individual.error == float("inf")
        with pytest.raises(RuntimeError):
            individual.predict(X)

    def test_predict_matches_fit(self, settings, data):
        X, y = data
        individual = Individual(bases=[ratio_term()])
        individual.evaluate(X, y, settings)
        predictions = individual.predict(X)
        assert predictions.shape == y.shape
        assert np.all(np.isfinite(predictions))

    def test_clone_resets_evaluation(self, settings, data):
        X, y = data
        individual = Individual(bases=[ratio_term()])
        individual.evaluate(X, y, settings)
        clone = individual.clone()
        assert clone.fit is None
        assert not clone.is_evaluated
        assert clone.n_bases == individual.n_bases

    def test_render_shows_coefficients_and_bases(self, settings, data):
        X, y = data
        individual = Individual(bases=[ratio_term(), linear_term(2)])
        individual.evaluate(X, y, settings)
        text = individual.render(("a", "b", "c"))
        assert "a / b" in text
        assert "c" in text

    def test_objectives_tuple(self, settings, data):
        X, y = data
        individual = Individual(bases=[ratio_term()])
        individual.evaluate(X, y, settings)
        error, complexity = individual.objectives
        assert error == individual.error
        assert complexity == individual.complexity

    def test_random_individuals_usually_feasible(self, settings, data):
        X, y = data
        generator = ExpressionGenerator(3, settings, rng=np.random.default_rng(1))
        feasible = 0
        for _ in range(40):
            individual = Individual(bases=generator.random_basis_functions())
            individual.evaluate(X, y, settings)
            feasible += int(individual.is_feasible)
        assert feasible > 20
