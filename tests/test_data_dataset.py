"""Unit tests for :mod:`repro.data.dataset`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_from_doe


def make_dataset(n=10, d=3, target="perf"):
    rng = np.random.default_rng(0)
    X = rng.uniform(1.0, 2.0, size=(n, d))
    y = X[:, 0] + X[:, 1]
    names = tuple(f"x{i}" for i in range(d))
    return Dataset(X, y, names, target_name=target)


class TestConstruction:
    def test_basic_properties(self):
        dataset = make_dataset(n=12, d=4)
        assert dataset.n_samples == 12
        assert dataset.n_variables == 4
        assert len(dataset) == 12
        assert dataset.variable_names == ("x0", "x1", "x2", "x3")

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            Dataset(np.ones((5, 2)), np.ones(4), ("a", "b"))

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError):
            Dataset(np.ones((5, 2)), np.ones(5), ("a",))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            Dataset(np.ones((5, 2)), np.ones(5), ("a", "a"))

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            Dataset(np.ones(5), np.ones(5), ("a",))


class TestAccessors:
    def test_column_by_name(self):
        dataset = make_dataset()
        np.testing.assert_allclose(dataset.column("x1"), dataset.X[:, 1])

    def test_unknown_column_raises_keyerror(self):
        dataset = make_dataset()
        with pytest.raises(KeyError):
            dataset.column("nope")

    def test_variable_index(self):
        dataset = make_dataset(d=3)
        assert dataset.variable_index("x2") == 2


class TestTransformations:
    def test_log10_target(self):
        dataset = make_dataset()
        logged = dataset.log10_target()
        assert logged.log_scaled
        np.testing.assert_allclose(logged.y, np.log10(dataset.y))

    def test_log10_rejects_nonpositive(self):
        dataset = make_dataset()
        bad = dataset.with_target(dataset.y - dataset.y.max() - 1.0)
        with pytest.raises(ValueError):
            bad.log10_target()

    def test_with_target_keeps_x(self):
        dataset = make_dataset()
        replaced = dataset.with_target(dataset.y * 2, target_name="double")
        assert replaced.target_name == "double"
        np.testing.assert_allclose(replaced.X, dataset.X)

    def test_select_rows_mask_and_indices(self):
        dataset = make_dataset(n=10)
        by_index = dataset.select_rows([0, 2, 4])
        assert by_index.n_samples == 3
        mask = dataset.y > np.median(dataset.y)
        by_mask = dataset.select_rows(mask)
        assert by_mask.n_samples == int(mask.sum())

    def test_select_variables(self):
        dataset = make_dataset(d=4)
        selected = dataset.select_variables(["x3", "x0"])
        assert selected.variable_names == ("x3", "x0")
        np.testing.assert_allclose(selected.X[:, 0], dataset.X[:, 3])

    def test_drop_nonfinite(self):
        dataset = make_dataset(n=8)
        y = dataset.y.copy()
        y[2] = np.nan
        X = dataset.X.copy()
        X[5, 0] = np.inf
        dirty = Dataset(X, y, dataset.variable_names)
        cleaned = dirty.drop_nonfinite()
        assert cleaned.n_samples == 6
        assert np.all(np.isfinite(cleaned.X))
        assert np.all(np.isfinite(cleaned.y))

    def test_drop_nonfinite_noop_returns_same_object(self):
        dataset = make_dataset()
        assert dataset.drop_nonfinite() is dataset

    def test_split_fractions(self):
        dataset = make_dataset(n=20)
        first, second = dataset.split(0.25, rng=np.random.default_rng(0))
        assert first.n_samples == 5
        assert second.n_samples == 15

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            make_dataset().split(1.5)

    def test_shuffled_preserves_rows(self):
        dataset = make_dataset(n=15)
        shuffled = dataset.shuffled(rng=np.random.default_rng(3))
        assert sorted(shuffled.y.tolist()) == sorted(dataset.y.tolist())


class TestTrainTestValidation:
    def test_compatible_pair_is_cleaned(self):
        train = make_dataset(n=10)
        test = make_dataset(n=8)
        cleaned_train, cleaned_test = train_test_from_doe(train, test)
        assert cleaned_train.n_samples == 10
        assert cleaned_test.n_samples == 8

    def test_mismatched_variables_rejected(self):
        train = make_dataset(d=3)
        test = Dataset(np.ones((4, 3)), np.ones(4), ("u", "v", "w"))
        with pytest.raises(ValueError):
            train_test_from_doe(train, test)

    def test_mismatched_target_rejected(self):
        train = make_dataset(target="PM")
        test = make_dataset(target="ALF")
        with pytest.raises(ValueError):
            train_test_from_doe(train, test)

    def test_summary_mentions_target_and_counts(self):
        dataset = make_dataset(target="PM")
        text = dataset.summary()
        assert "PM" in text
        assert str(dataset.n_samples) in text
