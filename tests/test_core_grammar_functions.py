"""Tests for the function set and the grammar machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.expression import ProductTerm, UnaryOpTerm, WeightedSum, WeightedTerm
from repro.core.functions import (
    BINARY_OPERATORS,
    FunctionSet,
    UNARY_OPERATORS,
    default_function_set,
    polynomial_function_set,
    rational_function_set,
)
from repro.core.grammar import (
    CAFFEINE_GRAMMAR_TEXT,
    GrammarError,
    default_grammar,
    function_set_from_grammar,
    grammar_text_for_function_set,
    parse_grammar,
    validate_expression,
)
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight


class TestOperators:
    def test_unary_operators_vectorized(self):
        x = np.array([1.0, 4.0, 9.0])
        np.testing.assert_allclose(UNARY_OPERATORS["sqrt"](x), np.sqrt(x))
        np.testing.assert_allclose(UNARY_OPERATORS["inv"](x), 1.0 / x)
        np.testing.assert_allclose(UNARY_OPERATORS["max0"](np.array([-1.0, 2.0])),
                                   [0.0, 2.0])

    def test_binary_operators_vectorized(self):
        a, b = np.array([1.0, 8.0]), np.array([2.0, 4.0])
        np.testing.assert_allclose(BINARY_OPERATORS["div"](a, b), a / b)
        np.testing.assert_allclose(BINARY_OPERATORS["min"](a, b), [1.0, 4.0])

    def test_arity_enforced(self):
        with pytest.raises(TypeError):
            UNARY_OPERATORS["ln"](np.ones(3), np.ones(3))
        with pytest.raises(TypeError):
            BINARY_OPERATORS["div"](np.ones(3))

    def test_format_templates(self):
        assert UNARY_OPERATORS["ln"].format("x") == "ln(x)"
        assert BINARY_OPERATORS["div"].format("a", "b") == "(a) / (b)"
        with pytest.raises(TypeError):
            UNARY_OPERATORS["ln"].format("a", "b")

    def test_domain_violations_do_not_raise(self):
        values = UNARY_OPERATORS["ln"](np.array([-1.0, 0.0, 1.0]))
        assert np.isnan(values[0]) and np.isinf(values[1])


class TestFunctionSet:
    def test_default_set_matches_paper(self):
        fs = default_function_set()
        names = set(fs.names())
        assert {"sqrt", "ln", "log10", "inv", "abs", "square", "sin", "cos",
                "tan", "max0", "min0", "exp2", "exp10", "div", "pow",
                "max", "min"} <= names

    def test_restricted_sets(self):
        assert set(rational_function_set().names()) == {"inv", "div"}
        assert polynomial_function_set().names() == ()
        assert not polynomial_function_set().has_nonlinear_operators

    def test_without_and_restricted_to(self):
        fs = default_function_set().without("sin", "cos", "tan")
        assert "sin" not in fs.names()
        only_div = default_function_set().restricted_to("div")
        assert only_div.names() == ("div",)

    def test_unknown_operator_rejected(self):
        with pytest.raises(KeyError):
            FunctionSet(unary=("nonsense",))
        with pytest.raises(KeyError):
            default_function_set().operator("nonsense")

    def test_equality_and_hash(self):
        assert rational_function_set() == rational_function_set()
        assert hash(rational_function_set()) == hash(rational_function_set())
        assert rational_function_set() != polynomial_function_set()


class TestGrammarParsing:
    def test_default_grammar_parses(self):
        grammar = default_grammar()
        assert grammar.start_symbol == "REPVC"
        assert "REPADD" in grammar.nonterminals
        assert "VC" in grammar.terminals
        assert "W" in grammar.terminals

    def test_operator_symbols_extracted(self):
        grammar = default_grammar()
        assert "DIVIDE" in grammar.operator_symbols("2OP")
        assert "LOG10" in grammar.operator_symbols("1OP")
        assert grammar.operator_symbols("MISSING") == ()

    def test_round_trip_render_and_parse(self):
        grammar = default_grammar()
        reparsed = parse_grammar(grammar.render())
        assert set(reparsed.nonterminals) == set(grammar.nonterminals)
        assert set(reparsed.terminals) == set(grammar.terminals)

    def test_malformed_lines_rejected(self):
        with pytest.raises(GrammarError):
            parse_grammar("REPVC 'VC'")
        with pytest.raises(GrammarError):
            parse_grammar("=> 'VC'")
        with pytest.raises(GrammarError):
            parse_grammar("REPVC => 'VC' | ")

    def test_duplicate_rule_rejected(self):
        with pytest.raises(GrammarError):
            parse_grammar("REPVC => 'VC'\nREPVC => 'W'")

    def test_missing_start_symbol_rejected(self):
        with pytest.raises(GrammarError):
            parse_grammar("FOO => 'VC'", start_symbol="REPVC")

    def test_comments_and_continuations(self):
        text = """
        # comment line
        REPVC => 'VC'
            | REPVC '*' REPOP
        REPOP => 1OP '(' 'W' ')'
        1OP => 'INV'
        """
        grammar = parse_grammar(text)
        assert len(grammar.rule("REPVC").productions) == 2


class TestGrammarFunctionSetBridge:
    def test_function_set_from_default_grammar(self):
        fs = function_set_from_grammar(default_grammar())
        assert set(fs.names()) == set(default_function_set().names())

    def test_text_for_function_set_round_trip(self):
        custom = FunctionSet(unary=("ln", "inv"), binary=("div",))
        text = grammar_text_for_function_set(custom)
        recovered = function_set_from_grammar(parse_grammar(text))
        assert set(recovered.names()) == set(custom.names())

    def test_unknown_symbol_rejected(self):
        with pytest.raises(GrammarError):
            function_set_from_grammar(parse_grammar(
                "REPVC => 'VC'\n1OP => 'WIBBLE'\nREPADD => 'W' '*' REPVC"))

    def test_polynomial_grammar_has_no_operator_rules(self):
        text = grammar_text_for_function_set(polynomial_function_set())
        grammar = parse_grammar(text)
        assert grammar.operator_symbols("1OP") == ()
        assert grammar.operator_symbols("2OP") == ()


class TestValidateExpression:
    def _term_with(self, operator_name):
        inner = WeightedSum(offset=Weight.from_value(1.0),
                            terms=[WeightedTerm(Weight.from_value(1.0),
                                                ProductTerm(vc=VariableCombo((1,))))])
        return ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS[operator_name],
                                            argument=inner)])

    def test_allowed_expression_passes(self):
        validate_expression(self._term_with("ln"), default_grammar())

    def test_disallowed_operator_fails(self):
        restricted = parse_grammar(grammar_text_for_function_set(
            rational_function_set()))
        with pytest.raises(GrammarError):
            validate_expression(self._term_with("sin"), restricted)

    def test_paper_grammar_text_constant_available(self):
        assert "REPVC" in CAFFEINE_GRAMMAR_TEXT
        assert "'VC'" in CAFFEINE_GRAMMAR_TEXT
