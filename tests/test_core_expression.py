"""Unit tests for the canonical-form expression AST."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    WeightedTerm,
    iter_nodes,
    iter_variable_combos,
    iter_weights,
)
from repro.core.functions import BINARY_OPERATORS, UNARY_OPERATORS, Operator
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight


def vc(*exponents):
    return VariableCombo(tuple(exponents))


def weight(value):
    return Weight.from_value(value)


@pytest.fixture
def sample_X():
    return np.array([[1.0, 2.0, 4.0],
                     [2.0, 1.0, 3.0],
                     [0.5, 4.0, 2.0]])


class TestProductTerm:
    def test_vc_only_evaluation(self, sample_X):
        term = ProductTerm(vc=vc(1, -1, 0))
        np.testing.assert_allclose(term.evaluate(sample_X),
                                   sample_X[:, 0] / sample_X[:, 1])

    def test_requires_content(self):
        with pytest.raises(ValueError):
            ProductTerm(vc=None, ops=[])

    def test_product_of_vc_and_operator(self, sample_X):
        inner = WeightedSum(offset=weight(0.0),
                            terms=[WeightedTerm(weight(1.0), ProductTerm(vc=vc(0, 0, 1)))])
        op_term = UnaryOpTerm(op=UNARY_OPERATORS["ln"], argument=inner)
        term = ProductTerm(vc=vc(1, 0, 0), ops=[op_term])
        expected = sample_X[:, 0] * np.log(sample_X[:, 2])
        np.testing.assert_allclose(term.evaluate(sample_X), expected)

    def test_clone_is_deep(self):
        term = ProductTerm(vc=vc(1, 0, 0))
        duplicate = term.clone()
        duplicate.vc = vc(0, 1, 0)
        assert term.vc == vc(1, 0, 0)

    def test_n_nodes_and_depth(self):
        simple = ProductTerm(vc=vc(1, 0, 0))
        assert simple.n_nodes == 2  # product term + VC terminal
        assert simple.depth == 1
        inner = WeightedSum(offset=weight(0.0),
                            terms=[WeightedTerm(weight(1.0), ProductTerm(vc=vc(1, 0, 0)))])
        nested = ProductTerm(ops=[UnaryOpTerm(UNARY_OPERATORS["inv"], inner)])
        # product term -> operator -> weighted sum -> inner product term
        assert nested.depth == 4
        assert nested.n_nodes > simple.n_nodes

    def test_render(self):
        term = ProductTerm(vc=vc(1, -1, 0))
        assert term.render(("a", "b", "c")) == "a / b"
        constant = ProductTerm(vc=vc(0, 0, 0))
        assert constant.render(("a", "b", "c")) == "1"


class TestWeightedSum:
    def test_evaluation(self, sample_X):
        ws = WeightedSum(
            offset=weight(2.0),
            terms=[WeightedTerm(weight(3.0), ProductTerm(vc=vc(1, 0, 0))),
                   WeightedTerm(weight(-1.0), ProductTerm(vc=vc(0, 1, 0)))])
        expected = 2.0 + 3.0 * sample_X[:, 0] - sample_X[:, 1]
        np.testing.assert_allclose(ws.evaluate(sample_X), expected, rtol=1e-9)

    def test_render_contains_offset_and_terms(self):
        ws = WeightedSum(offset=weight(1.5),
                         terms=[WeightedTerm(weight(2.0), ProductTerm(vc=vc(1, 0, 0)))])
        text = ws.render(("a", "b", "c"))
        assert "1.5" in text and "a" in text and "+" in text

    def test_clone_independent(self):
        ws = WeightedSum(offset=weight(1.0),
                         terms=[WeightedTerm(weight(1.0), ProductTerm(vc=vc(1, 0, 0)))])
        duplicate = ws.clone()
        duplicate.offset.stored = 0.0
        assert ws.offset.stored != 0.0 or ws.offset.value == 1.0


class TestUnaryOpTerm:
    def test_rejects_binary_operator(self):
        inner = WeightedSum(offset=weight(1.0), terms=[])
        with pytest.raises(ValueError):
            UnaryOpTerm(op=BINARY_OPERATORS["div"], argument=inner)

    def test_evaluation_and_render(self, sample_X):
        inner = WeightedSum(offset=weight(0.0),
                            terms=[WeightedTerm(weight(1.0), ProductTerm(vc=vc(1, 0, 0)))])
        term = UnaryOpTerm(op=UNARY_OPERATORS["square"], argument=inner)
        np.testing.assert_allclose(term.evaluate(sample_X), sample_X[:, 0] ** 2,
                                   rtol=1e-9)
        assert "^2" in term.render(("a", "b", "c"))

    def test_domain_violation_produces_nonfinite(self, sample_X):
        inner = WeightedSum(offset=weight(-10.0), terms=[])
        term = UnaryOpTerm(op=UNARY_OPERATORS["ln"], argument=inner)
        assert not np.all(np.isfinite(term.evaluate(sample_X)))


class TestBinaryOpTerm:
    def test_two_constants_rejected(self):
        with pytest.raises(ValueError):
            BinaryOpTerm(op=BINARY_OPERATORS["div"], left=weight(1.0),
                         right=weight(2.0))

    def test_rejects_unary_operator(self):
        inner = WeightedSum(offset=weight(1.0), terms=[])
        with pytest.raises(ValueError):
            BinaryOpTerm(op=UNARY_OPERATORS["ln"], left=inner, right=weight(1.0))

    def test_division_with_constant_denominator(self, sample_X):
        numerator = WeightedSum(offset=weight(0.0),
                                terms=[WeightedTerm(weight(1.0),
                                                    ProductTerm(vc=vc(0, 1, 0)))])
        term = BinaryOpTerm(op=BINARY_OPERATORS["div"], left=numerator,
                            right=weight(2.0))
        np.testing.assert_allclose(term.evaluate(sample_X), sample_X[:, 1] / 2.0,
                                   rtol=1e-9)

    def test_pow_with_constant_exponent(self, sample_X):
        base = WeightedSum(offset=weight(0.0),
                           terms=[WeightedTerm(weight(1.0),
                                               ProductTerm(vc=vc(1, 0, 0)))])
        term = BinaryOpTerm(op=BINARY_OPERATORS["pow"], left=base, right=weight(2.0))
        np.testing.assert_allclose(term.evaluate(sample_X), sample_X[:, 0] ** 2.0,
                                   rtol=1e-6)

    def test_clone_and_children(self):
        expr = WeightedSum(offset=weight(1.0), terms=[])
        term = BinaryOpTerm(op=BINARY_OPERATORS["max"], left=expr, right=weight(0.0))
        assert len(term.children()) == 1
        duplicate = term.clone()
        assert duplicate is not term
        assert duplicate.op is term.op


class TestConditionalOpTerm:
    def _lte(self):
        return Operator("lte", 2, lambda a, b: a, "lte", "LTE")

    def test_selects_branches(self, sample_X):
        test_expr = WeightedSum(offset=weight(0.0),
                                terms=[WeightedTerm(weight(1.0),
                                                    ProductTerm(vc=vc(1, 0, 0)))])
        low = WeightedSum(offset=weight(-1.0), terms=[])
        high = WeightedSum(offset=weight(+1.0), terms=[])
        term = ConditionalOpTerm(op=self._lte(), test=test_expr,
                                 threshold=weight(1.0), if_true=low, if_false=high)
        values = term.evaluate(sample_X)
        expected = np.where(sample_X[:, 0] <= 1.0, -1.0, 1.0)
        np.testing.assert_allclose(values, expected)

    def test_render_mentions_lte(self, sample_X):
        test_expr = WeightedSum(offset=weight(0.0), terms=[])
        term = ConditionalOpTerm(op=self._lte(), test=test_expr,
                                 threshold=weight(0.0),
                                 if_true=WeightedSum(offset=weight(1.0), terms=[]),
                                 if_false=WeightedSum(offset=weight(2.0), terms=[]))
        assert term.render(("a", "b", "c")).startswith("lte(")
        assert term.n_nodes > 3


class TestTraversal:
    def _nested_term(self):
        inner_sum = WeightedSum(
            offset=weight(1.0),
            terms=[WeightedTerm(weight(2.0), ProductTerm(vc=vc(0, 1, 0)))])
        op_term = UnaryOpTerm(op=UNARY_OPERATORS["inv"], argument=inner_sum)
        return ProductTerm(vc=vc(1, 0, 0), ops=[op_term])

    def test_iter_nodes_reaches_nested(self):
        term = self._nested_term()
        kinds = {type(node).__name__ for node in iter_nodes(term)}
        assert {"ProductTerm", "UnaryOpTerm", "WeightedSum"} <= kinds

    def test_iter_weights_counts_all(self):
        term = self._nested_term()
        weights = list(iter_weights(term))
        assert len(weights) == 2  # offset and inner term weight

    def test_iter_variable_combos(self):
        term = self._nested_term()
        combos = [combo for _, combo in iter_variable_combos(term)]
        assert vc(1, 0, 0) in combos and vc(0, 1, 0) in combos
        assert term.variable_combos() == combos
