"""Tests for random expression generation and the variation operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings
from hypothesis import strategies as st

from repro.core.expression import ProductTerm, iter_weights, structural_key
from repro.core.functions import polynomial_function_set, rational_function_set
from repro.core.generator import ExpressionGenerator
from repro.core.grammar import default_grammar, validate_expression
from repro.core.individual import Individual
from repro.core.operators import VariationOperators, collect_slots
from repro.core.settings import CaffeineSettings


@pytest.fixture
def settings():
    return CaffeineSettings(population_size=20, n_generations=5,
                            max_basis_functions=6, random_seed=0)


@pytest.fixture
def generator(settings):
    return ExpressionGenerator(n_variables=4, settings=settings,
                               rng=np.random.default_rng(0))


@pytest.fixture
def operators(generator, settings):
    return VariationOperators(generator, settings, rng=np.random.default_rng(1))


def make_individual(generator, n_bases=3):
    return Individual(bases=generator.random_basis_functions(n_bases))


class TestGenerator:
    def test_product_terms_respect_grammar(self, generator):
        grammar = default_grammar()
        for _ in range(50):
            term = generator.random_product_term()
            assert isinstance(term, ProductTerm)
            validate_expression(term, grammar)

    def test_depth_limit_respected(self, generator):
        for _ in range(100):
            term = generator.random_product_term()
            assert term.depth <= generator.settings.max_tree_depth

    def test_basis_function_count_in_range(self, generator):
        for _ in range(30):
            bases = generator.random_basis_functions()
            assert 1 <= len(bases) <= generator.settings.max_initial_basis_functions

    def test_explicit_count_clamped(self, generator):
        bases = generator.random_basis_functions(100)
        assert len(bases) == generator.settings.max_basis_functions

    def test_polynomial_function_set_yields_vc_only_terms(self, settings):
        poly_settings = settings.copy(function_set=polynomial_function_set())
        generator = ExpressionGenerator(3, poly_settings,
                                        rng=np.random.default_rng(2))
        for _ in range(50):
            term = generator.random_product_term()
            assert term.vc is not None
            assert term.ops == []

    def test_evaluation_on_positive_data_mostly_finite(self, generator):
        X = np.random.default_rng(0).uniform(0.5, 2.0, size=(20, 4))
        finite = 0
        for _ in range(50):
            values = generator.random_product_term().evaluate(X)
            finite += int(np.all(np.isfinite(values)))
        assert finite > 25  # most random canonical-form expressions behave

    def test_invalid_dimension(self, settings):
        with pytest.raises(ValueError):
            ExpressionGenerator(0, settings)

    def test_empty_function_set_cannot_make_op_terms(self, settings):
        poly_settings = settings.copy(function_set=polynomial_function_set())
        generator = ExpressionGenerator(3, poly_settings)
        with pytest.raises(ValueError):
            generator.random_op_term(4)


class TestSlots:
    def test_collect_slots_covers_bases(self, generator):
        individual = make_individual(generator, n_bases=3)
        slots = collect_slots(individual)
        kinds = {slot.kind for slot in slots}
        assert "REPVC" in kinds
        base_slots = [s for s in slots if s.kind == "REPVC"]
        assert len(base_slots) >= 3

    def test_slot_set_replaces_node(self, generator):
        individual = make_individual(generator, n_bases=2)
        slots = [s for s in collect_slots(individual) if s.kind == "REPVC"]
        replacement = generator.random_product_term()
        slots[0].set(replacement)
        assert slots[0].get() is replacement


class TestVariationOperators:
    def test_vary_always_returns_valid_individual(self, generator, operators):
        grammar = default_grammar()
        parent_a = make_individual(generator)
        parent_b = make_individual(generator)
        for _ in range(60):
            child = operators.vary(parent_a, parent_b)
            assert isinstance(child, Individual)
            assert len(child.bases) <= operators.settings.max_basis_functions
            for basis in child.bases:
                assert basis.depth <= operators.settings.max_tree_depth
                validate_expression(basis, grammar)

    def test_parents_never_modified(self, generator, operators):
        parent_a = make_individual(generator)
        parent_b = make_individual(generator)
        renders_a = [b.render(("a", "b", "c", "d")) for b in parent_a.bases]
        renders_b = [b.render(("a", "b", "c", "d")) for b in parent_b.bases]
        for _ in range(40):
            operators.vary(parent_a, parent_b)
        assert [b.render(("a", "b", "c", "d")) for b in parent_a.bases] == renders_a
        assert [b.render(("a", "b", "c", "d")) for b in parent_b.bases] == renders_b

    def test_parameter_mutation_changes_some_weight(self, generator, operators):
        parent = make_individual(generator)
        child = operators.parameter_mutation(parent)
        parent_weights = [w.stored for b in parent.bases for w in iter_weights(b)]
        child_weights = [w.stored for b in child.bases for w in iter_weights(b)]
        if parent_weights:  # individuals without weights fall back to basis_add
            assert len(parent_weights) == len(child_weights)
            assert parent_weights != child_weights

    def test_basis_delete_reduces_count(self, generator, operators):
        parent = make_individual(generator, n_bases=3)
        child = operators.basis_delete(parent)
        assert child is not None
        assert child.n_bases == 2

    def test_basis_delete_can_reach_constant_model(self, generator, operators):
        parent = make_individual(generator, n_bases=1)
        child = operators.basis_delete(parent)
        assert child is not None
        assert child.n_bases == 0

    def test_basis_add_respects_maximum(self, generator, operators):
        parent = make_individual(generator, n_bases=6)
        assert operators.basis_add(parent) is None
        smaller = make_individual(generator, n_bases=2)
        child = operators.basis_add(smaller)
        assert child.n_bases == 3

    def test_basis_crossover_mixes_parents(self, generator, operators):
        parent_a = make_individual(generator, n_bases=3)
        parent_b = make_individual(generator, n_bases=3)
        child = operators.basis_crossover(parent_a, parent_b)
        assert child is not None
        assert 2 <= child.n_bases <= operators.settings.max_basis_functions

    def test_basis_copy_appends(self, generator, operators):
        parent_a = make_individual(generator, n_bases=2)
        parent_b = make_individual(generator, n_bases=2)
        child = operators.basis_copy(parent_a, parent_b)
        assert child is not None
        assert child.n_bases == 3

    def test_subtree_crossover_same_kind(self, generator, operators):
        parent_a = make_individual(generator, n_bases=3)
        parent_b = make_individual(generator, n_bases=3)
        child = operators.subtree_crossover(parent_a, parent_b)
        assert child is None or isinstance(child, Individual)

    def test_vc_mutation_only_touches_exponents(self, generator, operators):
        parent = make_individual(generator, n_bases=3)
        child = operators.vc_mutation(parent)
        if child is not None:
            assert child.n_bases == parent.n_bases

    def test_operator_names_include_paper_set(self, operators):
        names = set(operators.operator_names())
        assert {"parameter_mutation", "vc_mutation", "vc_crossover",
                "subtree_mutation", "subtree_crossover", "basis_crossover",
                "basis_delete", "basis_add", "basis_copy"} == names

    def test_rational_function_set_children_stay_rational(self, settings):
        rational = settings.copy(function_set=rational_function_set())
        generator = ExpressionGenerator(3, rational, rng=np.random.default_rng(5))
        operators = VariationOperators(generator, rational,
                                       rng=np.random.default_rng(6))
        from repro.core.grammar import grammar_text_for_function_set, parse_grammar
        grammar = parse_grammar(grammar_text_for_function_set(rational_function_set()))
        parent_a = make_individual(generator)
        parent_b = make_individual(generator)
        for _ in range(40):
            child = operators.vary(parent_a, parent_b)
            for basis in child.bases:
                validate_expression(basis, grammar)


def _tree_snapshot(individual):
    """Bit-level identity of an individual's genome: per-basis structural key
    (recomputed from scratch -- :func:`structural_key` is deliberately
    memo-free) plus every weight's stored value and exponent bound."""
    return tuple(
        (repr(structural_key(basis)),
         tuple((w.stored, w.exponent_bound) for w in iter_weights(basis)))
        for basis in individual.bases)


def _backend_pair(backend, seed):
    settings = CaffeineSettings(population_size=20, n_generations=5,
                                max_basis_functions=6, random_seed=0,
                                genome_backend=backend)
    generator = ExpressionGenerator(n_variables=4, settings=settings,
                                    rng=np.random.default_rng(seed))
    operators = VariationOperators(generator, settings,
                                   rng=np.random.default_rng(seed + 1))
    return generator, operators


#: Every variation operator with its arity (how many parents it consumes).
OPERATOR_ARITY = {
    "parameter_mutation": 1, "vc_mutation": 1, "subtree_mutation": 1,
    "basis_delete": 1, "basis_add": 1,
    "vc_crossover": 2, "subtree_crossover": 2, "basis_crossover": 2,
    "basis_copy": 2,
}


class TestGenomeBackends:
    def test_settings_reject_unknown_genome_backend(self):
        with pytest.raises(ValueError, match="genome_backend must be"):
            CaffeineSettings(genome_backend="cow")

    def test_subtree_crossover_never_clones_whole_donor(self):
        """Regression: the deepcopy path used to deep-clone the entire donor
        individual just to enumerate graft sites.  Counting clone() calls on
        the donor's basis roots, a single crossover may clone at most the one
        transplanted subtree (<= 1 root clone; a wholesale donor clone would
        count one per donor basis), and the shared path clones nothing."""
        for backend, per_call_limit in (("shared", 0), ("deepcopy", 1)):
            generator, operators = _backend_pair(backend, seed=10)
            parent_a = make_individual(generator, n_bases=3)
            parent_b = make_individual(generator, n_bases=3)
            counter = [0]
            for basis in parent_b.bases:
                def counting_clone(_basis=basis):
                    counter[0] += 1
                    return type(_basis).clone(_basis)
                basis.clone = counting_clone
            for _ in range(30):
                before = counter[0]
                operators.subtree_crossover(parent_a, parent_b)
                assert counter[0] - before <= per_call_limit, backend

    def test_vary_streams_bit_identical_across_backends(self):
        """The shared (path-copying) and deepcopy (reference) genome backends
        must produce bit-identical children from an identical RNG stream --
        including when shared children are recycled as parents."""
        results = {}
        for backend in ("shared", "deepcopy"):
            generator, operators = _backend_pair(backend, seed=20)
            population = [make_individual(generator, n_bases=3)
                          for _ in range(5)]
            children = []
            for i in range(120):
                child = operators.vary(population[i % 5],
                                       population[(i * 3 + 1) % 5])
                children.append(_tree_snapshot(child))
                if i % 4 == 0:
                    population[i % 5] = child
            rng_state = operators.rng.bit_generator.state["state"]["state"]
            results[backend] = (children, rng_state)
        assert results["shared"] == results["deepcopy"]

    def test_engine_runs_bit_identical_across_backends(self, rational_train,
                                                       fast_settings):
        from repro.core.engine import run_caffeine

        fronts = {}
        for backend in ("shared", "deepcopy"):
            settings = fast_settings.copy(n_generations=4,
                                          genome_backend=backend)
            result = run_caffeine(rational_train, settings=settings)
            fronts[backend] = [(repr(m.train_error), repr(m.complexity),
                                m.expression()) for m in result.tradeoff]
        assert fronts["shared"] == fronts["deepcopy"]
        assert fronts["shared"]  # non-degenerate: the run found models


class TestParentIsolationProperty:
    @given(seed=st.integers(0, 10_000),
           name=st.sampled_from(sorted(OPERATOR_ARITY)),
           backend=st.sampled_from(["shared", "deepcopy"]))
    @hyp_settings(max_examples=80, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
    def test_operator_leaves_parents_bit_identical(self, seed, name, backend):
        """After any variation operator, in either genome backend, both
        parents' trees are bit-identical to before: same structural keys,
        same stored weight values.  This is the invariant that makes
        structure sharing safe -- a shared subtree is never edited in
        place."""
        generator, operators = _backend_pair(backend, seed)
        parent_a = make_individual(generator, n_bases=1 + seed % 4)
        parent_b = make_individual(generator, n_bases=1 + (seed // 4) % 4)
        before_a = _tree_snapshot(parent_a)
        before_b = _tree_snapshot(parent_b)
        operator = getattr(operators, name)
        if OPERATOR_ARITY[name] == 1:
            operator(parent_a)
        else:
            operator(parent_a, parent_b)
        assert _tree_snapshot(parent_a) == before_a
        assert _tree_snapshot(parent_b) == before_b
