"""Tests for the posynomial baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.posynomial import (
    Monomial,
    PosynomialTemplate,
    fit_posynomial,
    full_quadratic_template,
    linear_template,
)


def make_positive_dataset(n=100, seed=0, target="perf"):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.8, 1.2, size=(n, 3))
    y = 2.0 + 1.5 * X[:, 0] + 0.8 * X[:, 1] / X[:, 2]
    return Dataset(X, y, ("x0", "x1", "x2"), target_name=target)


class TestMonomial:
    def test_evaluation(self):
        monomial = Monomial((1.0, -2.0, 0.0))
        X = np.array([[2.0, 2.0, 5.0]])
        np.testing.assert_allclose(monomial.evaluate(X), [0.5])

    def test_degree_and_render(self):
        monomial = Monomial((1.0, -2.0, 0.0))
        assert monomial.degree == 3.0
        assert monomial.render(("a", "b", "c")) == "a*b^-2"
        assert Monomial((0.0, 0.0, 0.0)).render(("a", "b", "c")) == "1"

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            Monomial((1.0, 2.0)).evaluate(np.ones((3, 3)))


class TestTemplates:
    def test_linear_template_size(self):
        template = linear_template(5)
        assert len(template) == 10
        assert linear_template(5, include_inverse=False).monomials[0].degree == 1.0

    def test_full_quadratic_template_counts(self):
        template = full_quadratic_template(13)
        # 4 single-variable terms per variable + products and two ratios per pair.
        expected = 13 * 4 + 78 * 3
        assert len(template) == expected
        without_ratios = full_quadratic_template(13, include_ratios=False)
        assert len(without_ratios) == 13 * 4 + 78

    def test_feature_matrix_shape(self):
        template = full_quadratic_template(3)
        X = np.abs(np.random.default_rng(0).normal(size=(7, 3))) + 0.5
        features = template.feature_matrix(X)
        assert features.shape == (7, len(template))

    def test_template_dimension_validation(self):
        with pytest.raises(ValueError):
            PosynomialTemplate([Monomial((1.0, 0.0))], n_variables=3)
        with pytest.raises(ValueError):
            full_quadratic_template(0)


class TestFitting:
    def test_fit_reaches_low_training_error(self):
        train = make_positive_dataset(seed=0)
        test = make_positive_dataset(seed=1)
        model = fit_posynomial(train, test)
        assert model.train_error < 0.05
        assert np.isfinite(model.test_error)
        assert model.n_terms > 0

    def test_posynomial_variant_nonnegative(self):
        train = make_positive_dataset(seed=2)
        model = fit_posynomial(train, signomial=False)
        assert np.all(model.coefficients >= 0.0)
        assert not model.signomial

    def test_predictions_match_expression_domain(self):
        train = make_positive_dataset(seed=3)
        model = fit_posynomial(train)
        predictions = model.predict(train.X)
        assert predictions.shape == (train.n_samples,)
        transformed = model.predict_transformed(train.X)
        np.testing.assert_allclose(predictions, transformed)

    def test_log_scaled_target_predicts_in_original_domain(self):
        train = make_positive_dataset(seed=4).log10_target()
        model = fit_posynomial(train)
        assert model.log_scaled_target
        predictions = model.predict(train.X)
        assert np.all(predictions > 0.0)
        assert "10^(" in model.expression()

    def test_rejects_nonpositive_variables(self):
        X = np.array([[1.0, -1.0], [2.0, 3.0]])
        bad = Dataset(X, np.array([1.0, 2.0]), ("a", "b"))
        with pytest.raises(ValueError):
            fit_posynomial(bad)

    def test_rejects_mismatched_template(self):
        train = make_positive_dataset()
        with pytest.raises(ValueError):
            fit_posynomial(train, template=linear_template(5))

    def test_rejects_mismatched_test_variables(self):
        train = make_positive_dataset()
        other = Dataset(train.X, train.y, ("u", "v", "w"))
        with pytest.raises(ValueError):
            fit_posynomial(train, test=other)

    def test_expression_limits_terms(self):
        train = make_positive_dataset(seed=5)
        model = fit_posynomial(train)
        short = model.expression(max_terms=2)
        assert short.count("*") <= 4


class TestPaperCriticism:
    def test_posynomial_has_many_terms_compared_to_caffeine(self, ota_datasets):
        """The paper's interpretability criticism: posynomial models carry
        dozens of terms on the OTA problem."""
        train, test = ota_datasets.for_target("SRp")
        model = fit_posynomial(train, test)
        assert model.n_terms >= 10
