"""Shared fixtures for the test suite.

Expensive artifacts (OTA datasets, CAFFEINE runs) are built once per session
with deliberately small budgets so the whole suite stays fast while still
exercising the full pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset
from repro.experiments.setup import generate_ota_datasets


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def _rational_dataset(n_samples: int, seed: int) -> Dataset:
    """Samples of ``y = 3 + 2*a/b + 0.5*c`` on a positive design region."""
    generator = np.random.default_rng(seed)
    X = generator.uniform(0.5, 2.0, size=(n_samples, 3))
    y = 3.0 + 2.0 * X[:, 0] / X[:, 1] + 0.5 * X[:, 2]
    return Dataset(X, y, variable_names=("a", "b", "c"), target_name="y")


@pytest.fixture(scope="session")
def rational_train() -> Dataset:
    return _rational_dataset(120, seed=0)


@pytest.fixture(scope="session")
def rational_test() -> Dataset:
    return _rational_dataset(80, seed=1)


@pytest.fixture(scope="session")
def fast_settings() -> CaffeineSettings:
    """Small evolutionary budget used by engine-level tests."""
    return CaffeineSettings(
        population_size=30,
        n_generations=8,
        max_basis_functions=6,
        max_initial_basis_functions=3,
        random_seed=42,
    )


@pytest.fixture(scope="session")
def ota_datasets():
    """Small OTA datasets (27-run orthogonal array) shared across tests."""
    return generate_ota_datasets(n_runs=27)


@pytest.fixture(scope="session")
def ota_datasets_full():
    """The paper-sized 243-run datasets (used by a handful of tests)."""
    return generate_ota_datasets(n_runs=243)
