"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main, settings_from_args


class TestParser:
    def test_all_commands_accepted(self):
        parser = build_parser()
        for command in ("datasets", "figure3", "table1", "table2", "figure4",
                        "ablation"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_run_command_accepted(self):
        args = build_parser().parse_args(
            ["run", "data.csv", "--target", "y"])
        assert args.command == "run"
        assert args.csv == "data.csv"
        assert args.target == "y"

    def test_jobs_and_column_cache_flags(self):
        args = build_parser().parse_args(
            ["figure3", "--jobs", "3", "--column-cache", "cols.cache"])
        assert args.jobs == 3
        assert args.column_cache == "cols.cache"
        # Default: serial, no persistence.
        args = build_parser().parse_args(["table1"])
        assert args.jobs == 1
        assert args.column_cache is None

    def test_single_run_commands_reject_jobs(self):
        # table2 and run execute exactly one CAFFEINE run; accepting
        # --jobs would silently promise parallelism that never happens.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--jobs", "2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "x.csv", "--target", "y", "--jobs", "2"])
        # Both still take --column-cache (single runs warm-start too).
        args = build_parser().parse_args(
            ["table2", "--column-cache", "cols.cache"])
        assert args.column_cache == "cols.cache"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5"])

    def test_settings_from_args(self):
        args = build_parser().parse_args(
            ["table1", "--population", "33", "--generations", "7", "--seed", "5"])
        settings = settings_from_args(args)
        assert settings.population_size == 33
        assert settings.n_generations == 7
        assert settings.random_seed == 5

    def test_paper_budget_flag(self):
        args = build_parser().parse_args(["figure3", "--paper-budget"])
        settings = settings_from_args(args)
        assert settings.population_size == 200
        assert settings.n_generations == 5000


class TestMain:
    def test_datasets_command(self, capsys):
        exit_code = main(["datasets", "--runs", "27"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "OTA datasets" in output
        assert "PM" in output

    def test_table1_command_small_budget(self, capsys):
        exit_code = main(["table1", "--runs", "27", "--population", "20",
                          "--generations", "3", "--targets", "SRp"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "SRp" in output

    def test_table2_command_small_budget(self, capsys):
        exit_code = main(["table2", "--runs", "27", "--population", "20",
                          "--generations", "3", "--target", "SRn"])
        assert exit_code == 0
        assert "Table II" in capsys.readouterr().out

    def test_table1_with_jobs_and_cache(self, capsys, tmp_path):
        path = str(tmp_path / "cols.cache")
        exit_code = main(["table1", "--runs", "27", "--population", "16",
                          "--generations", "2", "--targets", "PM", "SRp",
                          "--jobs", "2", "--column-cache", path])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table I" in output and "2 jobs" in output
        import os
        assert os.path.exists(path)  # the sweep persisted its columns


class TestRunCommand:
    def _write_csv(self, path):
        import numpy as np

        rng = np.random.default_rng(0)
        rows = ["a,b,y"]
        for _ in range(30):
            a, b = rng.uniform(0.5, 2.0, size=2)
            rows.append(f"{a},{b},{1 + 2 * a / b}")
        path.write_text("\n".join(rows) + "\n")

    def test_run_csv_prints_tradeoff(self, capsys, tmp_path):
        csv_path = tmp_path / "toy.csv"
        self._write_csv(csv_path)
        exit_code = main(["run", str(csv_path), "--target", "y",
                          "--population", "16", "--generations", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "error/complexity trade-off" in output
        assert "Best model:" in output

    def test_run_csv_with_test_split_and_progress(self, capsys, tmp_path):
        train_path = tmp_path / "train.csv"
        test_path = tmp_path / "test.csv"
        self._write_csv(train_path)
        self._write_csv(test_path)
        exit_code = main(["run", str(train_path), "--target", "y",
                          "--test", str(test_path), "--features", "a", "b",
                          "--population", "16", "--generations", "3",
                          "--progress"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "testing-error trade-off" in output
        assert "starting" in output  # the ProgressPrinter callback fired

    def test_run_unknown_target_fails_cleanly(self, tmp_path):
        csv_path = tmp_path / "toy.csv"
        self._write_csv(csv_path)
        with pytest.raises(ValueError, match="target column"):
            main(["run", str(csv_path), "--target", "nope"])
