"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main, settings_from_args


class TestParser:
    def test_all_commands_accepted(self):
        parser = build_parser()
        for command in ("datasets", "figure3", "table1", "table2", "figure4",
                        "ablation"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5"])

    def test_settings_from_args(self):
        args = build_parser().parse_args(
            ["table1", "--population", "33", "--generations", "7", "--seed", "5"])
        settings = settings_from_args(args)
        assert settings.population_size == 33
        assert settings.n_generations == 7
        assert settings.random_seed == 5

    def test_paper_budget_flag(self):
        args = build_parser().parse_args(["figure3", "--paper-budget"])
        settings = settings_from_args(args)
        assert settings.population_size == 200
        assert settings.n_generations == 5000


class TestMain:
    def test_datasets_command(self, capsys):
        exit_code = main(["datasets", "--runs", "27"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "OTA datasets" in output
        assert "PM" in output

    def test_table1_command_small_budget(self, capsys):
        exit_code = main(["table1", "--runs", "27", "--population", "20",
                          "--generations", "3", "--targets", "SRp"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "SRp" in output

    def test_table2_command_small_budget(self, capsys):
        exit_code = main(["table2", "--runs", "27", "--population", "20",
                          "--generations", "3", "--target", "SRn"])
        assert exit_code == 0
        assert "Table II" in capsys.readouterr().out
