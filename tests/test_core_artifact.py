"""Frozen Pareto-front artifacts: round trip, damage handling, compat rules.

The load-bearing guarantee is *bit identity*: a front saved with
``save_front`` and loaded with ``load_front`` predicts and rescores exactly
-- to the last bit -- what the originating run's models produce (which is
also what the ``artifact_roundtrip`` equivalence key gates in CI).  On top
of that: corrupt files are quarantined to ``<path>.corrupt-<n>``, a
dataset-fingerprint mismatch warns and serves (only a feature-count
mismatch rejects), and the estimator facade saves/loads losslessly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.artifact import (
    FrontArtifactStore,
    FrozenFront,
    load_front,
    save_front,
)
from repro.core.engine import run_caffeine
from repro.core.problem import Problem
from repro.core.report import rescore_models
from repro.core.session import Session
from repro.core.settings import CaffeineSettings
from repro.estimator import SymbolicRegressor
from repro.experiments import run_figure3


def _assert_rows_bit_identical(front: FrozenFront, models, X) -> None:
    stacked = front.predict_all(X)
    assert stacked.shape == (len(models), X.shape[0])
    for row, model in zip(stacked, models):
        np.testing.assert_array_equal(row, model.predict(X))


@pytest.fixture(scope="module")
def result(rational_train, rational_test, fast_settings):
    return run_caffeine(rational_train, rational_test, fast_settings)


@pytest.fixture()
def artifact_path(result, tmp_path):
    path = tmp_path / "front.caffeine"
    save_front(result, path)
    return path


class TestRoundTrip:
    def test_predictions_bit_identical(self, result, artifact_path,
                                       rational_test):
        front = load_front(artifact_path)
        _assert_rows_bit_identical(front, list(result.tradeoff),
                                   rational_test.X)

    def test_rescore_equals_rescore_models(self, result, artifact_path,
                                           rational_test):
        front = load_front(artifact_path)
        live = rescore_models(list(result.tradeoff), rational_test.X,
                              rational_test.y)
        frozen = front.rescore(rational_test.X, rational_test.y)
        assert np.array_equal(np.asarray(frozen), np.asarray(live),
                              equal_nan=True)

    def test_metadata_travels(self, result, artifact_path):
        front = load_front(artifact_path)
        assert front.target_name == result.target_name
        assert front.variable_names == result.variable_names
        assert front.n_models == len(result.tradeoff)
        assert front.dataset_fingerprint == result.dataset_fingerprint
        assert front.function_set_fingerprint == \
            result.function_set_fingerprint
        assert front.settings_fingerprint == result.settings.fingerprint()
        assert front.source_runtime_seconds == result.runtime_seconds
        assert front.created_wall_time is not None

    def test_expressions_and_tradeoff_preserved(self, result, artifact_path):
        front = load_front(artifact_path)
        assert front.expressions() == tuple(
            m.expression() for m in result.tradeoff)
        assert [m.complexity for m in front.tradeoff] == \
            [m.complexity for m in result.tradeoff]
        # the test trade-off re-filters identically from the stored errors
        assert [m.expression() for m in front.test_tradeoff] == \
            [m.expression() for m in result.test_tradeoff]

    def test_refreeze_is_lossless(self, result, artifact_path, tmp_path,
                                  rational_test):
        front = load_front(artifact_path)
        second = tmp_path / "refrozen.caffeine"
        assert save_front(front, second) == front.n_models
        again = load_front(second)
        assert again.expressions() == front.expressions()
        assert again.dataset_fingerprint == front.dataset_fingerprint
        _assert_rows_bit_identical(again, list(result.tradeoff),
                                   rational_test.X)

    def test_figure3_front_roundtrip(self, ota_datasets, tmp_path):
        settings = CaffeineSettings(population_size=24, n_generations=4,
                                    max_basis_functions=6, random_seed=0)
        figure3 = run_figure3(ota_datasets, settings, targets=("PM",))
        live = figure3.results["PM"]
        path = tmp_path / "pm.front"
        save_front(live, path)
        front = load_front(path)
        _, test = ota_datasets.for_target("PM")
        _assert_rows_bit_identical(front, list(live.tradeoff), test.X)
        assert np.array_equal(
            np.asarray(front.rescore(test.X, test.y)),
            np.asarray(rescore_models(list(live.tradeoff), test.X, test.y)),
            equal_nan=True)

    def test_csv_problem_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        X = rng.uniform(0.5, 2.0, size=(30, 2))
        y = 0.5 + X[:, 0] * X[:, 1]
        csv = tmp_path / "data.csv"
        lines = ["a,b,y"] + [f"{a},{b},{t}" for (a, b), t in zip(X, y)]
        csv.write_text("\n".join(lines) + "\n")
        problem = Problem.from_csv(str(csv), target="y")
        settings = CaffeineSettings(population_size=16, n_generations=2,
                                    random_seed=0)
        live = Session([problem], settings=settings).run().single()
        path = tmp_path / "csv.front"
        save_front(live, path)
        front = load_front(path)
        assert front.variable_names == ("a", "b")
        _assert_rows_bit_identical(front, list(live.tradeoff), X)
        np.testing.assert_array_equal(front.predict(X),
                                      live.best_model().predict(X))


class TestSelection:
    def test_select_matches_best_model(self, result, artifact_path):
        front = load_front(artifact_path)
        assert front.select(by="test").expression() == \
            result.best_model(by="test").expression()
        assert front.select(by="train").expression() == \
            result.best_model(by="train").expression()

    def test_complexity_bound(self, result, artifact_path):
        front = load_front(artifact_path)
        bound = float(min(m.complexity for m in front.models))
        chosen = front.select(by="train", complexity_max=bound)
        assert chosen.complexity <= bound
        with pytest.raises(ValueError, match="no model has complexity"):
            front.select(complexity_max=bound - 1.0)

    def test_model_index(self, artifact_path):
        front = load_front(artifact_path)
        assert front.select(model_index=0) is front.models[0]
        with pytest.raises(ValueError, match="out of range"):
            front.select(model_index=front.n_models)

    def test_bad_by_rejected(self, artifact_path):
        front = load_front(artifact_path)
        with pytest.raises(ValueError, match="by must be"):
            front.select(by="validation")


class TestCompatibility:
    def test_fingerprint_mismatch_warns_and_serves(self, artifact_path,
                                                   rational_train):
        shifted = rational_train.X + 1.0
        with pytest.warns(RuntimeWarning, match="serving anyway"):
            front = load_front(artifact_path, dataset=shifted)
        # still a fully functional front
        assert np.isfinite(front.predict(shifted)).all()

    def test_matching_dataset_does_not_warn(self, artifact_path,
                                            rational_train):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            front = load_front(artifact_path, dataset=rational_train.X)
        assert front.check_dataset(rational_train.X) is True

    def test_feature_count_mismatch_rejects(self, artifact_path):
        with pytest.raises(ValueError, match="shape"):
            load_front(artifact_path, dataset=np.ones((4, 7)))
        front = load_front(artifact_path)
        with pytest.raises(ValueError, match="shape"):
            front.predict(np.ones((4, 7)))
        with pytest.raises(ValueError, match="shape"):
            front.predict_all(np.ones(3))


class TestDamageAndErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_front(tmp_path / "absent.front")

    def test_corrupt_artifact_quarantined(self, artifact_path):
        blob = artifact_path.read_bytes()
        artifact_path.write_bytes(blob[:-20])  # truncate the payload
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with pytest.raises(ValueError, match="no readable front"):
                load_front(artifact_path)
        assert not artifact_path.exists()
        assert artifact_path.with_name(
            artifact_path.name + ".corrupt-0").exists()

    def test_foreign_magic_left_in_place(self, tmp_path):
        path = tmp_path / "other.front"
        path.write_bytes(b"something-else\n1\nabc\npayload")
        with pytest.warns(RuntimeWarning, match="bad magic"):
            with pytest.raises(ValueError, match="no readable front"):
                load_front(path)
        assert path.exists()  # foreign files are never destroyed

    def test_empty_tradeoff_rejected(self, tmp_path):
        empty = FrozenFront(target_name="t", variable_names=("a",),
                            models=())
        with pytest.raises(ValueError, match="empty trade-off"):
            save_front(empty, tmp_path / "x.front")

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="tradeoff"):
            save_front(object(), tmp_path / "x.front")

    def test_store_magic_is_distinct(self):
        from repro.core.cache_store import ColumnCacheStore, \
            RunCheckpointStore

        magics = {FrontArtifactStore.MAGIC, ColumnCacheStore.MAGIC,
                  RunCheckpointStore.MAGIC}
        assert len(magics) == 3


class TestEstimatorSaveLoad:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0.5, 2.0, size=(40, 2))
        y = 1.0 + 2.0 * X[:, 0] / X[:, 1]
        est = SymbolicRegressor(population_size=20, n_generations=3,
                                random_seed=0).fit(X, y)
        return est, X, y

    def test_save_load_predicts_identically(self, fitted, tmp_path):
        est, X, y = fitted
        path = tmp_path / "est.front"
        assert est.save(path) == len(est.pareto_front_)
        loaded = SymbolicRegressor.load(path)
        np.testing.assert_array_equal(loaded.predict(X), est.predict(X))
        assert loaded.expression() == est.expression()
        assert loaded.score(X, y) == est.score(X, y)
        assert loaded.n_features_in_ == est.n_features_in_
        assert loaded.feature_names_in_ == est.feature_names_in_
        assert isinstance(loaded.result_, FrozenFront)
        assert len(loaded.pareto_front_) == len(est.pareto_front_)

    def test_load_validates_model_selection(self, fitted, tmp_path):
        est, _, _ = fitted
        path = tmp_path / "est.front"
        est.save(path)
        with pytest.raises(ValueError, match="model_selection"):
            SymbolicRegressor.load(path, model_selection="best")

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="not fitted"):
            SymbolicRegressor().save(tmp_path / "x.front")


class TestCli:
    def test_freeze_and_save_front_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        rng = np.random.default_rng(1)
        X = rng.uniform(0.5, 2.0, size=(24, 2))
        y = 0.5 + X[:, 0] * X[:, 1]
        csv = tmp_path / "d.csv"
        lines = ["a,b,y"] + [f"{a},{b},{t}" for (a, b), t in zip(X, y)]
        csv.write_text("\n".join(lines) + "\n")

        frozen = tmp_path / "frozen.front"
        assert main(["freeze", str(csv), "--target", "y", "--out",
                     str(frozen), "--population", "16",
                     "--generations", "2"]) == 0
        assert "Froze" in capsys.readouterr().out
        front = load_front(frozen)
        assert front.target_name == "y"

        saved = tmp_path / "run.front"
        assert main(["run", str(csv), "--target", "y", "--population", "16",
                     "--generations", "2", "--save-front",
                     str(saved)]) == 0
        capsys.readouterr()
        other = load_front(saved)
        # same problem/settings/seed => identical frozen fronts
        assert other.expressions() == front.expressions()
