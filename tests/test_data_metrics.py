"""Unit tests for :mod:`repro.data.metrics`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.metrics import (
    error_normalization,
    mean_squared_error,
    normalized_mse,
    normalized_rmse,
    q_tc,
    q_wc,
    r_squared,
    relative_rmse,
)


class TestMeanSquaredError:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, -1.0]) == pytest.approx(1.0)

    def test_nonfinite_prediction_is_inf(self):
        assert mean_squared_error([1.0, 2.0], [np.nan, 2.0]) == float("inf")

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestNormalizedMse:
    def test_constant_model_scores_one(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        prediction = np.full_like(y, y.mean())
        assert normalized_mse(y, prediction) == pytest.approx(1.0)

    def test_perfect_model_scores_zero(self):
        y = np.array([1.0, 5.0, -2.0])
        assert normalized_mse(y, y) == 0.0

    def test_degenerate_target_perfect_fit(self):
        y = np.full(5, 7.0)
        assert normalized_mse(y, y) == 0.0

    def test_degenerate_target_bad_fit(self):
        y = np.full(5, 7.0)
        assert normalized_mse(y, y + 1.0) == float("inf")

    def test_rmse_is_sqrt_of_mse(self):
        y = np.array([0.0, 1.0, 2.0, 3.0])
        prediction = y + 0.5
        assert normalized_rmse(y, prediction) == pytest.approx(
            np.sqrt(normalized_mse(y, prediction)))

    def test_r_squared_complements_nmse(self):
        y = np.array([0.0, 1.0, 2.0, 5.0])
        prediction = y * 0.9
        assert r_squared(y, prediction) == pytest.approx(
            1.0 - normalized_mse(y, prediction))


class TestErrorNormalization:
    def test_range_is_used(self):
        y = np.array([1.0, 3.0, 5.0])
        assert error_normalization(y) == pytest.approx(4.0)

    def test_constant_data_falls_back_to_magnitude(self):
        y = np.full(4, 2.5)
        assert error_normalization(y) == pytest.approx(2.5)

    def test_all_zero_falls_back_to_one(self):
        assert error_normalization(np.zeros(3)) == 1.0


class TestRelativeRmse:
    def test_scaling(self):
        y = np.array([0.0, 2.0])
        prediction = np.array([1.0, 1.0])
        # RMS error is 1.0; normalization 4 -> 0.25.
        assert relative_rmse(y, prediction, 4.0) == pytest.approx(0.25)

    def test_invalid_normalization(self):
        with pytest.raises(ValueError):
            relative_rmse([1.0], [1.0], 0.0)

    def test_nonfinite_prediction(self):
        assert relative_rmse([1.0, 2.0], [np.inf, 2.0], 1.0) == float("inf")


class TestPaperQualityMeasures:
    def test_constant_model_training_error_below_100_percent(self):
        """A constant model must be able to score well below 100 % (paper:
        zero-complexity models land at 10-25 % training error)."""
        rng = np.random.default_rng(0)
        y = rng.uniform(0.0, 1.0, size=200)
        constant = np.full_like(y, y.mean())
        assert 0.0 < q_wc(y, constant) < 0.5

    def test_qtc_uses_training_normalization_when_given(self):
        y_train = np.array([0.0, 10.0])
        y_test = np.array([4.0, 6.0])
        prediction = np.array([5.0, 5.0])
        assert q_tc(y_test, prediction, normalization=error_normalization(y_train)) \
            == pytest.approx(np.sqrt(1.0) / 10.0)

    def test_qtc_requires_training_normalization(self):
        """Regression: qtc used to silently fall back to the *testing* range,
        rescaling the paper's measure; the normalization is now mandatory."""
        y_test = np.array([4.0, 6.0])
        prediction = np.array([5.0, 5.0])
        with pytest.raises(TypeError):
            q_tc(y_test, prediction)

    def test_qtc_differs_from_test_range_normalization(self):
        """The training range (not the narrower testing range) is the
        denominator, so interpolative test sets score *lower*, not higher."""
        y_train = np.array([0.0, 10.0])
        y_test = np.array([4.0, 6.0])
        prediction = np.array([5.0, 5.0])
        training_normalized = q_tc(y_test, prediction,
                                   error_normalization(y_train))
        testing_normalized = q_tc(y_test, prediction,
                                  error_normalization(y_test))
        assert training_normalized < testing_normalized

    def test_interpolation_gives_lower_test_error(self):
        """With a fixed (training-range) normalization, a model evaluated on
        lower-spread interior data scores a lower error -- the paper's
        'testing error below training error' effect."""
        rng = np.random.default_rng(1)
        x_train = rng.uniform(-1.0, 1.0, size=300)
        x_test = rng.uniform(-0.3, 0.3, size=300)
        def truth(x):
            return 1.0 + 2.0 * x + 0.5 * x ** 2

        def model(x):  # misses the curvature
            return 1.0 + 2.0 * x
        normalization = error_normalization(truth(x_train))
        train_error = relative_rmse(truth(x_train), model(x_train), normalization)
        test_error = relative_rmse(truth(x_test), model(x_test), normalization)
        assert test_error < train_error
