"""Tests for the linear-regression utilities (LS, PRESS, forward regression, NNLS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.regression import (
    fit_linear,
    forward_select,
    hat_matrix,
    loo_residuals,
    nonnegative_least_squares,
    predict_linear,
    press_rmse,
    press_statistic,
)


@pytest.fixture
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(80, 3))
    y = 1.5 + 2.0 * X[:, 0] - 0.5 * X[:, 1] + 0.05 * rng.normal(size=80)
    return X, y


class TestLeastSquares:
    def test_recovers_coefficients(self, linear_data):
        X, y = linear_data
        fit = fit_linear(X, y)
        assert fit is not None
        assert fit.intercept == pytest.approx(1.5, abs=0.05)
        np.testing.assert_allclose(fit.coefficients, [2.0, -0.5, 0.0], atol=0.05)

    def test_intercept_only(self):
        y = np.array([1.0, 2.0, 3.0])
        fit = fit_linear(np.zeros((3, 0)), y)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.n_terms == 0
        np.testing.assert_allclose(fit.predict(np.zeros((5, 0))), np.full(5, 2.0))

    def test_without_intercept(self, linear_data):
        X, y = linear_data
        fit = fit_linear(X, y, include_intercept=False)
        assert fit.intercept == 0.0

    def test_nonfinite_inputs_return_none(self):
        X = np.array([[1.0], [np.nan]])
        assert fit_linear(X, np.array([1.0, 2.0])) is None

    def test_collinear_columns_handled(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=50)
        X = np.column_stack([x, 2.0 * x])  # perfectly collinear
        y = 3.0 * x + 1.0
        fit = fit_linear(X, y)
        assert fit is not None
        predictions = fit.predict(X)
        assert np.sqrt(np.mean((predictions - y) ** 2)) < 1e-6

    def test_predict_dimension_check(self, linear_data):
        X, y = linear_data
        fit = fit_linear(X, y)
        with pytest.raises(ValueError):
            predict_linear(fit, X[:, :2])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_linear(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            fit_linear(np.ones(3), np.ones(3))


class TestPress:
    def test_hat_matrix_is_projection_like(self, linear_data):
        X, y = linear_data
        H = hat_matrix(X)
        assert H.shape == (80, 80)
        # Trace equals the number of fitted parameters (intercept + 3).
        assert np.trace(H) == pytest.approx(4.0, abs=0.01)

    def test_loo_residuals_match_explicit_loo(self):
        """Closed-form LOO residuals must equal brute-force refitting."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(25, 2))
        y = 1.0 + X[:, 0] - 2.0 * X[:, 1] + 0.1 * rng.normal(size=25)
        closed_form = loo_residuals(X, y, ridge=0.0)
        for t in range(25):
            mask = np.arange(25) != t
            fit = fit_linear(X[mask], y[mask], ridge=0.0)
            prediction = fit.predict(X[t:t + 1])[0]
            assert closed_form[t] == pytest.approx(y[t] - prediction, rel=1e-5,
                                                   abs=1e-8)

    def test_press_penalizes_overfitting(self):
        """Adding pure-noise columns must not decrease (and typically
        increases) the PRESS statistic even though it lowers the residual."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 1))
        y = 2.0 * X[:, 0] + 0.2 * rng.normal(size=40)
        noise = rng.normal(size=(40, 12))
        press_true = press_statistic(X, y)
        press_noisy = press_statistic(np.hstack([X, noise]), y)
        assert press_noisy > press_true * 0.9
        residual_true = fit_linear(X, y).residual_sum_of_squares
        residual_noisy = fit_linear(np.hstack([X, noise]), y).residual_sum_of_squares
        assert residual_noisy < residual_true

    def test_press_rmse_scale(self, linear_data):
        X, y = linear_data
        value = press_rmse(X, y)
        assert 0.0 < value < 0.2


class TestForwardRegression:
    def test_selects_true_features_before_noise(self):
        rng = np.random.default_rng(4)
        n = 60
        informative = rng.normal(size=(n, 2))
        noise = rng.normal(size=(n, 5))
        y = 3.0 * informative[:, 0] - 2.0 * informative[:, 1] \
            + 0.05 * rng.normal(size=n)
        candidates = np.hstack([noise, informative])
        result = forward_select(candidates, y, max_terms=4)
        assert set(result.selected_indices[:2]) == {5, 6}
        assert result.final_press < result.baseline_press

    def test_stops_when_no_improvement(self):
        rng = np.random.default_rng(5)
        y = rng.normal(size=30)
        noise = rng.normal(size=(30, 6))
        result = forward_select(noise, y)
        assert result.n_selected <= 2

    def test_max_terms_respected(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(50, 8))
        y = X @ np.arange(1.0, 9.0) + 0.01 * rng.normal(size=50)
        result = forward_select(X, y, max_terms=3)
        assert result.n_selected == 3

    def test_candidate_restriction(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(40, 4))
        y = X[:, 0] + 0.01 * rng.normal(size=40)
        result = forward_select(X, y, candidate_indices=[1, 2, 3])
        assert 0 not in result.selected_indices

    def test_invalid_arguments(self):
        X = np.ones((10, 2))
        y = np.ones(10)
        with pytest.raises(ValueError):
            forward_select(X, y, max_terms=-1)
        with pytest.raises(IndexError):
            forward_select(X, y, candidate_indices=[5])

    def test_nonfinite_candidates_skipped(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(30, 2))
        y = X[:, 0]
        X = X.copy()
        X[0, 1] = np.inf
        result = forward_select(X, y)
        assert 1 not in result.selected_indices


class TestNnls:
    def test_nonnegative_coefficients(self):
        rng = np.random.default_rng(9)
        F = np.abs(rng.normal(size=(50, 4)))
        y = F @ np.array([1.0, 0.0, 2.0, 0.5])
        coefficients, intercept = nonnegative_least_squares(F, y)
        assert np.all(coefficients >= 0.0)
        assert intercept == 0.0
        np.testing.assert_allclose(F @ coefficients, y, atol=1e-6)

    def test_free_intercept_variant(self):
        rng = np.random.default_rng(10)
        F = np.abs(rng.normal(size=(60, 3)))
        y = -5.0 + F @ np.array([1.0, 2.0, 0.0])
        coefficients, intercept = nonnegative_least_squares(F, y,
                                                            include_intercept=True)
        assert intercept == pytest.approx(-5.0, abs=0.2)
        np.testing.assert_allclose(F @ coefficients + intercept, y, atol=0.2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            nonnegative_least_squares(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            nonnegative_least_squares(np.full((3, 2), np.nan), np.ones(3))
