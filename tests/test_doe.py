"""Unit tests for :mod:`repro.doe`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.doe import (
    DoePlan,
    centered_levels,
    full_factorial,
    is_orthogonal_array,
    latin_hypercube,
    orthogonal_array,
    orthogonal_hypercube,
    scale_design,
)


class TestFullFactorial:
    def test_shape_and_levels(self):
        design = full_factorial(3, 2)
        assert design.shape == (9, 2)
        assert set(design.ravel().tolist()) == {0, 1, 2}

    def test_all_combinations_unique(self):
        design = full_factorial(2, 4)
        assert len({tuple(row) for row in design}) == 16

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            full_factorial(1, 3)
        with pytest.raises(ValueError):
            full_factorial(3, 0)


class TestOrthogonalArray:
    def test_paper_design_243_runs_13_factors(self):
        design = orthogonal_array(13, levels=3, strength_exponent=5)
        assert design.shape == (243, 13)
        assert is_orthogonal_array(design, levels=3, strength=2)

    def test_small_design_is_orthogonal(self):
        # Four 3-level factors fit in the classic L9 array.
        design = orthogonal_array(4, levels=3)
        assert design.shape == (9, 4)
        assert is_orthogonal_array(design, levels=3, strength=2)

    def test_two_level_design(self):
        design = orthogonal_array(3, levels=2, strength_exponent=3)
        assert design.shape == (8, 3)
        assert is_orthogonal_array(design, levels=2, strength=2)

    def test_each_column_balanced(self):
        design = orthogonal_array(13, levels=3, strength_exponent=5)
        for column in design.T:
            counts = np.bincount(column, minlength=3)
            assert np.all(counts == 81)

    def test_too_many_factors_rejected(self):
        with pytest.raises(ValueError):
            orthogonal_array(5, levels=3, strength_exponent=2)  # max 4 columns

    def test_nonprime_levels_rejected(self):
        with pytest.raises(ValueError):
            orthogonal_array(3, levels=4)

    def test_is_orthogonal_array_detects_violation(self):
        design = orthogonal_array(4, levels=3)
        corrupted = design.copy()
        corrupted[0, 0] = (corrupted[0, 0] + 1) % 3
        assert not is_orthogonal_array(corrupted, levels=3, strength=2)


class TestOrthogonalHypercube:
    def test_n_runs_selected_automatically(self):
        design = orthogonal_hypercube(13, levels=3)
        assert design.shape == (27, 13)

    def test_explicit_n_runs(self):
        design = orthogonal_hypercube(13, levels=3, n_runs=243)
        assert design.shape == (243, 13)

    def test_invalid_n_runs(self):
        with pytest.raises(ValueError):
            orthogonal_hypercube(4, levels=3, n_runs=100)


class TestScaling:
    def test_centered_levels_three(self):
        design = np.array([[0, 1, 2]])
        np.testing.assert_allclose(centered_levels(design, 3), [[-1.0, 0.0, 1.0]])

    def test_scale_design_relative(self):
        design = np.array([[0, 1, 2]])
        scaled = scale_design(design, nominal=[10.0, 10.0, 10.0], dx=0.1)
        np.testing.assert_allclose(scaled, [[9.0, 10.0, 11.0]])

    def test_scale_design_absolute(self):
        design = np.array([[0, 2]])
        scaled = scale_design(design, nominal=[1.0, 1.0], dx=0.5, relative=False)
        np.testing.assert_allclose(scaled, [[0.5, 1.5]])

    def test_scale_rejects_negative_dx(self):
        with pytest.raises(ValueError):
            scale_design(np.zeros((1, 2), dtype=int), [1.0, 1.0], -0.1)

    def test_scale_rejects_wrong_nominal_length(self):
        with pytest.raises(ValueError):
            scale_design(np.zeros((1, 3), dtype=int), [1.0, 1.0], 0.1)


class TestLatinHypercube:
    def test_shape_and_bounds(self):
        sample = latin_hypercube(20, 4, rng=np.random.default_rng(0))
        assert sample.shape == (20, 4)
        assert np.all((sample >= 0.0) & (sample <= 1.0))

    def test_stratification(self):
        sample = latin_hypercube(10, 1, rng=np.random.default_rng(1))
        bins = np.floor(sample[:, 0] * 10).astype(int)
        assert sorted(bins.tolist()) == list(range(10))


class TestDoePlan:
    def test_orthogonal_plan_matches_paper_setup(self):
        nominal = {f"v{i}": 1.0 for i in range(13)}
        plan = DoePlan.orthogonal(nominal, dx=0.1, n_runs=243)
        assert plan.n_runs == 243
        assert plan.n_factors == 13
        assert plan.variable_names == tuple(nominal.keys())
        # Each factor takes exactly three values: 0.9, 1.0 and 1.1.
        for j in range(plan.n_factors):
            values = np.unique(np.round(plan.points[:, j], 12))
            np.testing.assert_allclose(values, [0.9, 1.0, 1.1])

    def test_as_dicts_round_trip(self):
        nominal = {"a": 2.0, "b": 4.0}
        plan = DoePlan.orthogonal(nominal, dx=0.5, n_runs=9)
        rows = plan.as_dicts()
        assert len(rows) == 9
        assert set(rows[0].keys()) == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            DoePlan(points=np.ones((3, 2)), variable_names=("a",),
                    nominal=(1.0, 1.0), dx=0.1)
