"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings
from hypothesis import strategies as st

from repro.core.complexity import model_complexity
from repro.core.generator import ExpressionGenerator
from repro.core.grammar import default_grammar, validate_expression
from repro.core.individual import Individual
from repro.core.pareto import (
    crowding_distances,
    dominates,
    fast_nondominated_sort,
    nondominated_indices,
)
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight, transform_stored_value
from repro.data.metrics import error_normalization, normalized_mse, relative_rmse
from repro.doe.orthogonal import is_orthogonal_array, orthogonal_array
from repro.regression.least_squares import fit_linear

# Shared hypothesis profile: keep examples modest so the suite stays fast.
FAST = hyp_settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# weights
# ----------------------------------------------------------------------
@FAST
@given(stored=st.floats(min_value=-20.0, max_value=20.0),
       bound=st.floats(min_value=1.0, max_value=15.0))
def test_weight_transform_range(stored, bound):
    value = transform_stored_value(stored, bound)
    if value != 0.0:
        assert 10.0 ** (-bound) - 1e-300 <= abs(value) <= 10.0 ** bound * (1 + 1e-9)


@FAST
@given(value=st.floats(min_value=-1e9, max_value=1e9,
                       allow_nan=False, allow_infinity=False))
def test_weight_from_value_round_trip(value):
    weight = Weight.from_value(value)
    if value == 0.0:
        assert weight.value == 0.0
    elif abs(value) >= 1e-10:
        assert weight.value == pytest.approx(value, rel=1e-9)


# ----------------------------------------------------------------------
# variable combos
# ----------------------------------------------------------------------
@FAST
@given(exponents=st.lists(st.integers(min_value=-3, max_value=3),
                          min_size=1, max_size=6))
def test_vc_evaluation_matches_numpy(exponents):
    vc = VariableCombo(tuple(exponents))
    rng = np.random.default_rng(0)
    X = rng.uniform(0.5, 2.0, size=(10, len(exponents)))
    expected = np.prod(X ** np.array(exponents, dtype=float), axis=1)
    np.testing.assert_allclose(vc.evaluate(X), expected, rtol=1e-9)
    assert vc.total_order == sum(abs(e) for e in exponents)


@FAST
@given(exponents=st.lists(st.integers(min_value=-3, max_value=3),
                          min_size=2, max_size=6),
       seed=st.integers(min_value=0, max_value=1000))
def test_vc_crossover_preserves_gene_pool(exponents, seed):
    rng = np.random.default_rng(seed)
    parent_a = VariableCombo(tuple(exponents))
    parent_b = VariableCombo(tuple(reversed(exponents)))
    child_a, child_b = parent_a.crossover(parent_b, rng)
    for position in range(len(exponents)):
        pool = {parent_a.exponents[position], parent_b.exponents[position]}
        assert child_a.exponents[position] in pool
        assert child_b.exponents[position] in pool


# ----------------------------------------------------------------------
# generated expressions
# ----------------------------------------------------------------------
@FAST
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_variables=st.integers(min_value=1, max_value=8))
def test_generated_expressions_respect_grammar_and_depth(seed, n_variables):
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed)
    generator = ExpressionGenerator(n_variables, settings,
                                    rng=np.random.default_rng(seed))
    grammar = default_grammar()
    term = generator.random_product_term()
    validate_expression(term, grammar)
    assert term.depth <= settings.max_tree_depth
    assert term.n_nodes >= 1
    clone = term.clone()
    assert clone.render([f"x{i}" for i in range(n_variables)]) == \
        term.render([f"x{i}" for i in range(n_variables)])


@FAST
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_complexity_nonnegative_and_monotone_in_bases(seed):
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed)
    generator = ExpressionGenerator(4, settings, rng=np.random.default_rng(seed))
    bases = generator.random_basis_functions(3)
    assert model_complexity([], settings) == 0.0
    one = model_complexity(bases[:1], settings)
    three = model_complexity(bases, settings)
    assert 0.0 < one <= three
    assert three == pytest.approx(sum(model_complexity([b], settings) for b in bases))


# ----------------------------------------------------------------------
# Pareto machinery
# ----------------------------------------------------------------------
vectors_strategy = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=100.0),
              st.floats(min_value=0.0, max_value=100.0)),
    min_size=1, max_size=30)


@FAST
@given(vectors=vectors_strategy)
def test_nondominated_front_members_are_mutually_nondominated(vectors):
    front = nondominated_indices(vectors)
    assert front  # never empty for a non-empty input
    for i in front:
        for j in front:
            if i != j:
                assert not dominates(vectors[i], vectors[j])


@FAST
@given(vectors=vectors_strategy)
def test_fast_sort_partitions_population(vectors):
    fronts = fast_nondominated_sort(vectors)
    flat = sorted(i for front in fronts for i in front)
    assert flat == list(range(len(vectors)))
    # Earlier fronts are never dominated by later fronts.
    for earlier_index, front in enumerate(fronts):
        for later_front in fronts[earlier_index + 1:]:
            for i in front:
                for j in later_front:
                    assert not dominates(vectors[j], vectors[i])


@FAST
@given(vectors=vectors_strategy)
def test_crowding_distances_nonnegative(vectors):
    distances = crowding_distances(vectors)
    assert len(distances) == len(vectors)
    assert all(d >= 0.0 for d in distances)


# ----------------------------------------------------------------------
# vectorized Pareto kernels == pure-Python reference
# ----------------------------------------------------------------------
# Adversarial objective values: exact ties and signed zeros (stable-sort
# order must agree), infinities (the engine's infeasibility marker), plus
# ordinary magnitudes.  NaN is deliberately excluded: the backends document
# it as unsupported (sort placement would differ).
_adversarial_value = st.one_of(
    st.sampled_from([0.0, -0.0, 1.0, -1.0, 2.5, 1e300, -1e300,
                     float("inf"), float("-inf")]),
    st.floats(allow_nan=False, allow_infinity=True, width=64),
)


@st.composite
def _equal_length_vectors(draw):
    n_objectives = draw(st.integers(min_value=1, max_value=3))
    vectors = draw(st.lists(
        st.tuples(*[_adversarial_value] * n_objectives),
        min_size=0, max_size=25))
    # Duplicate a slice of the population to force ties and identical points.
    if vectors and draw(st.booleans()):
        vectors = vectors + vectors[:draw(st.integers(0, len(vectors)))]
    return vectors


@FAST
@given(vectors=_equal_length_vectors())
def test_fast_sort_backends_identical(vectors):
    python_fronts = fast_nondominated_sort(vectors, backend="python")
    numpy_fronts = fast_nondominated_sort(vectors, backend="numpy")
    assert numpy_fronts == python_fronts


@FAST
@given(vectors=_equal_length_vectors())
def test_nondominated_indices_backends_identical(vectors):
    assert nondominated_indices(vectors, backend="numpy") == \
        nondominated_indices(vectors, backend="python")


@FAST
@given(vectors=_equal_length_vectors())
def test_crowding_backends_identical(vectors):
    python_distances = crowding_distances(vectors, backend="python")
    numpy_distances = crowding_distances(vectors, backend="numpy")
    assert len(python_distances) == len(numpy_distances)
    for a, b in zip(python_distances, numpy_distances):
        # Bitwise agreement, inf included (inf == inf holds).
        assert a == b or (np.isnan(a) and np.isnan(b))


@FAST
@given(vectors=_equal_length_vectors(), seed=st.integers(0, 10_000),
       target_fraction=st.floats(min_value=0.1, max_value=1.0))
def test_rank_and_selection_backends_identical(vectors, seed, target_fraction):
    import dataclasses as dataclasses_module

    from repro.core.nsga2 import environmental_selection, rank_population

    if not vectors:
        return

    @dataclasses_module.dataclass
    class Point:
        objectives: tuple

    population = [Point(v) for v in vectors]
    ranked_python = rank_population(population, backend="python")
    ranked_numpy = rank_population(population, backend="numpy")
    assert [r.rank for r in ranked_python] == [r.rank for r in ranked_numpy]
    assert [r.crowding for r in ranked_python] == \
        [r.crowding for r in ranked_numpy]
    target = max(1, int(len(population) * target_fraction))
    assert [id(p) for p in environmental_selection(population, target,
                                                   backend="python")] == \
        [id(p) for p in environmental_selection(population, target,
                                                backend="numpy")]


# ----------------------------------------------------------------------
# gram-pool fits == direct fits, bit for bit
# ----------------------------------------------------------------------
@FAST
@given(n_samples=st.integers(min_value=2, max_value=120),
       n_bases=st.integers(min_value=0, max_value=15),
       scale_exponent=st.integers(min_value=-8, max_value=8),
       seed=st.integers(min_value=0, max_value=10_000),
       degenerate=st.sampled_from(["none", "duplicate", "zero", "constant"]))
def test_gram_fit_bitwise_equals_fit_linear(n_samples, n_bases,
                                            scale_exponent, seed, degenerate):
    from repro.regression.least_squares import (
        fit_linear_from_gram,
        raw_normal_statistics,
    )

    rng = np.random.default_rng(seed)
    basis_matrix = rng.normal(size=(n_samples, n_bases)) * \
        10.0 ** rng.integers(-abs(scale_exponent), abs(scale_exponent) + 1,
                             size=n_bases)
    if n_bases >= 2 and degenerate == "duplicate":
        basis_matrix[:, 1] = basis_matrix[:, 0]
    elif n_bases >= 1 and degenerate == "zero":
        basis_matrix[:, 0] = 0.0
    elif n_bases >= 1 and degenerate == "constant":
        basis_matrix[:, 0] = 3.25
    y = rng.normal(size=n_samples) * 10.0 ** scale_exponent

    direct = fit_linear(basis_matrix, y)
    gram, colsums, ydots = raw_normal_statistics(basis_matrix, y)
    pooled = fit_linear_from_gram(gram, colsums, ydots, float(y.sum()),
                                  basis_matrix, y)
    assert (direct is None) == (pooled is None)
    if direct is not None:
        assert pooled.intercept == direct.intercept
        assert np.array_equal(pooled.coefficients, direct.coefficients)
        assert pooled.residual_sum_of_squares == direct.residual_sum_of_squares
        assert pooled.rank == direct.rank
        assert pooled.singular == direct.singular


@FAST
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_individuals=st.integers(min_value=1, max_value=8))
def test_gram_evaluator_bitwise_equals_direct_evaluator(seed, n_individuals):
    from repro.core.evaluation import PopulationEvaluator
    from repro.core.individual import Individual

    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed, max_basis_functions=6)
    rng = np.random.default_rng(seed)
    generator = ExpressionGenerator(3, settings, rng=rng)
    X = np.random.default_rng(seed + 1).uniform(0.5, 2.0, size=(40, 3))
    y = np.random.default_rng(seed + 2).normal(size=40)
    population = [Individual(bases=generator.random_basis_functions())
                  for _ in range(n_individuals)]
    reference = [ind.clone() for ind in population]
    gram = PopulationEvaluator(X, y, settings.copy(fit_backend="gram"))
    direct = PopulationEvaluator(X, y, settings.copy(fit_backend="direct"))
    gram.evaluate_population(population)
    direct.evaluate_population(reference)
    for a, b in zip(population, reference):
        assert a.error == b.error
        assert a.complexity == b.complexity
        assert (a.fit is None) == (b.fit is None)
        if a.fit is not None:
            assert a.fit.intercept == b.fit.intercept
            assert np.array_equal(a.fit.coefficients, b.fit.coefficients)


# ----------------------------------------------------------------------
# metrics and linear algebra
# ----------------------------------------------------------------------
@FAST
@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                       min_size=2, max_size=50),
       shift=st.floats(min_value=-10.0, max_value=10.0))
def test_relative_rmse_shift_invariance_of_normalization(values, shift):
    y = np.array(values)
    normalization = error_normalization(y)
    assert normalization > 0
    if normalization < 1e-6 or 0.0 < abs(shift) < 1e-6:
        return  # avoid denormal underflow corner cases
    # Shifting predictions by a constant changes the error proportionally to
    # the shift, never producing negative or NaN errors.
    error = relative_rmse(y, y + shift, normalization)
    assert error >= 0.0
    assert error == pytest.approx(abs(shift) / normalization, rel=1e-9, abs=1e-12)


@FAST
@given(n_samples=st.integers(min_value=5, max_value=60),
       n_features=st.integers(min_value=0, max_value=4),
       seed=st.integers(min_value=0, max_value=1000))
def test_linear_fit_never_worse_than_mean_model(n_samples, n_features, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    y = rng.normal(size=n_samples)
    fit = fit_linear(X, y)
    assert fit is not None
    mean_rss = float(np.sum((y - y.mean()) ** 2))
    assert fit.residual_sum_of_squares <= mean_rss + 1e-6


@FAST
@given(prediction_noise=st.one_of(
    st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)))
def test_normalized_mse_zero_iff_exact(prediction_noise):
    y = np.linspace(0.0, 1.0, 20)
    prediction = y + prediction_noise
    error = normalized_mse(y, prediction)
    if prediction_noise == 0.0:
        assert error == 0.0
    else:
        assert error > 0.0


# ----------------------------------------------------------------------
# DOE
# ----------------------------------------------------------------------
@FAST
@given(n_factors=st.integers(min_value=2, max_value=13),
       levels=st.sampled_from([2, 3]))
def test_orthogonal_arrays_always_strength_two(n_factors, levels):
    design = orthogonal_array(n_factors, levels=levels)
    assert design.shape[1] == n_factors
    assert is_orthogonal_array(design, levels=levels, strength=2)


# ----------------------------------------------------------------------
# individuals
# ----------------------------------------------------------------------
@FAST
@given(seed=st.integers(min_value=0, max_value=5000))
def test_individual_evaluation_invariants(seed):
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed)
    rng = np.random.default_rng(seed)
    generator = ExpressionGenerator(3, settings, rng=rng)
    X = rng.uniform(0.5, 2.0, size=(30, 3))
    y = 1.0 + X[:, 0] * X[:, 1]
    individual = Individual(bases=generator.random_basis_functions())
    individual.evaluate(X, y, settings)
    assert individual.complexity >= 0.0
    assert individual.error >= 0.0 or individual.error == float("inf")
    if individual.is_feasible:
        predictions = individual.predict(X)
        assert predictions.shape == y.shape
