"""The advertised API cannot rot: doctest the package quickstart.

The package docstring of :mod:`repro` *is* the documentation users see
first; its examples run here (and in CI's examples-smoke job) so a
refactor that breaks the quickstart breaks the build.
"""

from __future__ import annotations

import doctest

import repro


def test_package_docstring_examples_run():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0, "the quickstart lost its examples"
    assert results.failed == 0


def test_advertised_names_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ advertises missing {name}"
