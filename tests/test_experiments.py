"""Tests for the experiment drivers (Figure 3, Tables I/II, Figure 4, ablation).

These run with tiny budgets; they verify plumbing and the qualitative shape
of the results rather than absolute numbers (the benchmark harness under
``benchmarks/`` produces the paper-style outputs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.settings import CaffeineSettings
from repro.experiments import (
    generate_ota_datasets,
    run_ablation,
    run_caffeine_for_target,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)
from repro.experiments.setup import LOG_SCALED_TARGETS


@pytest.fixture(scope="module")
def tiny_settings():
    return CaffeineSettings(population_size=24, n_generations=6,
                            max_basis_functions=6, random_seed=0)


@pytest.fixture(scope="module")
def shared_results(ota_datasets, tiny_settings):
    """One CAFFEINE run per target, shared by the driver tests."""
    targets = ("PM", "SRp")
    return {t: run_caffeine_for_target(ota_datasets, t, tiny_settings)
            for t in targets}


class TestSetup:
    def test_dataset_generation_shapes(self, ota_datasets):
        assert set(ota_datasets.performance_names) == \
            {"ALF", "fu", "PM", "voffset", "SRp", "SRn"}
        train, test = ota_datasets.for_target("ALF")
        assert train.n_variables == 13
        assert train.n_samples > 0 and test.n_samples > 0
        assert train.variable_names == test.variable_names

    def test_paper_sized_datasets(self, ota_datasets_full):
        train, test = ota_datasets_full.for_target("PM")
        assert train.n_samples == 243
        assert test.n_samples == 243

    def test_fu_is_log_scaled(self, ota_datasets):
        train, _ = ota_datasets.for_target("fu")
        assert "fu" in LOG_SCALED_TARGETS
        assert train.log_scaled

    def test_train_and_test_steps_differ(self, ota_datasets):
        assert ota_datasets.train_dx > ota_datasets.test_dx

    def test_unknown_target_rejected(self, ota_datasets):
        with pytest.raises(KeyError):
            ota_datasets.for_target("gain_margin")

    def test_invalid_dx_rejected(self):
        with pytest.raises(ValueError):
            generate_ota_datasets(train_dx=-0.1)

    def test_summary_renders(self, ota_datasets):
        assert "PM" in ota_datasets.summary()


class TestFigure3:
    def test_series_shape(self, ota_datasets, tiny_settings, shared_results):
        figure3 = run_figure3(ota_datasets, tiny_settings, targets=("PM",))
        series = figure3.series["PM"]
        assert series.n_models == len(figure3.results["PM"].tradeoff)
        assert len(series.train_error) == series.n_models
        assert len(series.test_error) == series.n_models
        assert len(series.n_bases) == series.n_models
        # Complexity is sorted ascending, training error non-increasing.
        assert list(series.complexity) == sorted(series.complexity)
        assert list(series.train_error) == sorted(series.train_error, reverse=True)

    def test_constant_end_of_tradeoff_has_highest_error(self, ota_datasets,
                                                        tiny_settings):
        figure3 = run_figure3(ota_datasets, tiny_settings, targets=("SRp",))
        series = figure3.series["SRp"]
        assert series.constant_model_train_error >= series.best_train_error

    def test_render_mentions_both_tradeoffs(self, ota_datasets, tiny_settings):
        figure3 = run_figure3(ota_datasets, tiny_settings, targets=("SRp",))
        text = figure3.render()
        assert "training-error trade-off" in text
        assert "testing-error trade-off" in text


class TestTable1:
    def test_rows_for_all_requested_targets(self, ota_datasets, tiny_settings,
                                            shared_results):
        table1 = run_table1(ota_datasets, tiny_settings,
                            targets=("PM", "SRp"), results=shared_results)
        assert {row.target for row in table1.rows} == {"PM", "SRp"}
        row = table1.row("SRp")
        if row.satisfied:
            assert row.model.train_error <= table1.error_target
            assert row.model.test_error <= table1.error_target

    def test_srp_meets_ten_percent_with_small_budget(self, ota_datasets,
                                                     tiny_settings,
                                                     shared_results):
        """SRp is nearly linear in id2, so even a tiny run finds a <10% model."""
        table1 = run_table1(ota_datasets, tiny_settings, targets=("SRp",),
                            results=shared_results)
        assert table1.row("SRp").satisfied

    def test_render_contains_expressions(self, ota_datasets, tiny_settings,
                                         shared_results):
        table1 = run_table1(ota_datasets, tiny_settings, targets=("SRp",),
                            results=shared_results)
        assert "Table I" in table1.render()


class TestTable2:
    def test_models_ordered_by_complexity(self, shared_results):
        table2 = run_table2(result=shared_results["PM"], target="PM")
        complexities = [m.complexity for m in table2.models]
        assert complexities == sorted(complexities)
        assert table2.n_models >= 1

    def test_errors_roughly_decrease(self, shared_results):
        table2 = run_table2(result=shared_results["PM"], target="PM")
        assert table2.errors_decrease_with_complexity()

    def test_render(self, shared_results):
        table2 = run_table2(result=shared_results["PM"], target="PM")
        assert "Table II" in table2.render()


class TestFigure4:
    def test_comparison_rows(self, ota_datasets, tiny_settings, shared_results):
        figure4 = run_figure4(ota_datasets, tiny_settings, targets=("PM", "SRp"),
                              results=shared_results)
        assert len(figure4.rows) == 2
        for row in figure4.rows:
            assert np.isfinite(row.caffeine_train)
            assert np.isfinite(row.posynomial_train)
            assert row.posynomial_model.n_terms > 0
        assert "Figure 4" in figure4.render()

    def test_caffeine_wins_listed(self, ota_datasets, tiny_settings, shared_results):
        figure4 = run_figure4(ota_datasets, tiny_settings, targets=("PM", "SRp"),
                              results=shared_results)
        for target in figure4.caffeine_wins():
            row = figure4.row(target)
            assert row.caffeine_test < row.posynomial_test


class TestAblation:
    def test_all_approaches_present(self, ota_datasets):
        settings = CaffeineSettings(population_size=20, n_generations=4,
                                    random_seed=0)
        ablation = run_ablation(ota_datasets, settings, target="SRp",
                                include_single_objective=False)
        approaches = {entry.approach for entry in ablation.entries}
        assert "CAFFEINE (full grammar)" in approaches
        assert "CAFFEINE (rationals)" in approaches
        assert "CAFFEINE (polynomials)" in approaches
        assert "plain GP (no grammar)" in approaches
        assert "Ablation" in ablation.render()
        for entry in ablation.entries:
            assert np.isfinite(entry.train_error)
