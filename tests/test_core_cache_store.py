"""Persistent column-cache store: round trips, isolation, damage recovery."""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.core.cache_store import ColumnCacheStore
from repro.core.engine import run_caffeine
from repro.core.evaluation import BasisColumnCache, PopulationEvaluator
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset


@pytest.fixture()
def fast_settings():
    return CaffeineSettings.fast_settings()


def _population(seed: int, n: int = 6, n_variables: int = 3):
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed)
    generator = ExpressionGenerator(n_variables, settings,
                                    rng=np.random.default_rng(seed))
    return [Individual(bases=generator.random_basis_functions())
            for _ in range(n)]


def _evaluator(seed: int, settings, cache=None):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(30, 3))
    y = rng.normal(size=30)
    return PopulationEvaluator(X, y, settings, cache=cache)


def _no_store_warnings(recorded) -> bool:
    return not [w for w in recorded if "column-cache" in str(w.message)]


class TestRoundTrip:
    def test_save_load_preserves_entries_bitwise(self, fast_settings,
                                                 tmp_path):
        evaluator = _evaluator(0, fast_settings)
        evaluator.evaluate_population(_population(0))
        store = ColumnCacheStore(tmp_path / "cols.cache")
        n_saved = store.save(evaluator.cache)
        assert n_saved == len(evaluator.cache) > 0

        reloaded = store.load(max_entries=fast_settings.basis_cache_size)
        original = dict(evaluator.cache.items())
        restored = dict(reloaded.items())
        assert set(original) == set(restored)
        for key, column in original.items():
            assert restored[key].tobytes() == column.tobytes()

    def test_warm_cache_serves_all_columns(self, fast_settings, tmp_path):
        cold = _evaluator(1, fast_settings)
        population = _population(1)
        cold.evaluate_population(population)
        store = ColumnCacheStore(tmp_path / "cols.cache")
        store.save(cold.cache)

        warm_cache = BasisColumnCache(fast_settings.basis_cache_size)
        assert store.load_into(warm_cache) == len(cold.cache)
        warm = _evaluator(1, fast_settings, cache=warm_cache)
        reference = [ind.clone() for ind in population]
        warm.evaluate_population(reference)
        assert warm.n_columns_computed == 0  # every column came from disk
        for a, b in zip(population, reference):
            assert a.error == b.error
            assert a.complexity == b.complexity

    def test_save_is_atomic_overwrite_and_creates_parents(self, fast_settings,
                                                          tmp_path):
        path = tmp_path / "deep" / "nested" / "cols.cache"
        store = ColumnCacheStore(path)
        evaluator = _evaluator(2, fast_settings)
        evaluator.evaluate_population(_population(2))
        store.save(evaluator.cache)
        first = path.read_bytes()
        store.save(evaluator.cache)  # overwrite in place
        assert path.read_bytes() == first
        # No temp litter -- only the data file and the advisory lock sidecar.
        assert sorted(path.parent.iterdir()) == [
            path, path.with_name(path.name + ".lock")]

    def test_save_merges_with_stored_entries(self, fast_settings, tmp_path):
        """A second run saving to a shared file never erases the first
        run's namespaces, even though its LRU never held them."""
        store = ColumnCacheStore(tmp_path / "shared.cache")
        first = _evaluator(21, fast_settings)
        first.evaluate_population(_population(21))
        store.save(first.cache)

        other_rng = np.random.default_rng(77)
        second = PopulationEvaluator(
            other_rng.uniform(0.5, 2.0, size=(30, 3)),
            other_rng.normal(size=30), fast_settings)
        second.evaluate_population(_population(21))
        store.save(second.cache)  # second.cache holds none of first's keys

        merged = store.load(max_entries=100000)
        merged_keys = {key for key, _column in merged.items()}
        for key, _column in first.cache.items():
            assert key in merged_keys
        for key, _column in second.cache.items():
            assert key in merged_keys
        # A shrunken (even empty) cache cannot wipe the file either ...
        store.save(BasisColumnCache(10))
        assert {k for k, _c in store.load(100000).items()} == merged_keys
        # ... unless merging is explicitly disabled.
        store.save(BasisColumnCache(10), merge=False)
        assert len(store.load(100000)) == 0

    def test_load_skips_existing_keys(self, fast_settings, tmp_path):
        evaluator = _evaluator(3, fast_settings)
        evaluator.evaluate_population(_population(3))
        store = ColumnCacheStore(tmp_path / "cols.cache")
        store.save(evaluator.cache)
        # Loading into the cache that produced the file adds nothing.
        assert store.load_into(evaluator.cache) == 0


class TestIsolation:
    def test_different_dataset_never_reuses_entries(self, fast_settings,
                                                    tmp_path):
        producer = _evaluator(4, fast_settings)
        producer.evaluate_population(_population(4))
        store = ColumnCacheStore(tmp_path / "cols.cache")
        store.save(producer.cache)

        # Same trees, different X: the fingerprint prefix isolates them.
        other_rng = np.random.default_rng(99)
        other = PopulationEvaluator(
            other_rng.uniform(0.5, 2.0, size=(30, 3)),
            other_rng.normal(size=30), fast_settings,
            cache=store.load(fast_settings.basis_cache_size))
        population = _population(4)
        reference = [ind.clone() for ind in population]
        other.evaluate_population(population)
        fresh = PopulationEvaluator(other.X, other.y, fast_settings)
        fresh.evaluate_population(reference)
        # The file served nothing: exactly the fresh-start work was done.
        assert other.n_columns_computed == fresh.n_columns_computed > 0
        for a, b in zip(population, reference):
            assert a.error == b.error

    def test_different_function_set_namespace_isolated(self, fast_settings,
                                                       tmp_path):
        from repro.core.functions import rational_function_set

        producer = _evaluator(5, fast_settings)
        producer.evaluate_population(_population(5))
        store = ColumnCacheStore(tmp_path / "cols.cache")
        store.save(producer.cache)

        rational = fast_settings.copy(function_set=rational_function_set())
        consumer = PopulationEvaluator(producer.X, producer.y, rational,
                                       cache=store.load())
        assert consumer.dataset_key != producer.dataset_key

    def test_dataset_key_filter_loads_only_matching(self, fast_settings,
                                                    tmp_path):
        producer = _evaluator(6, fast_settings)
        producer.evaluate_population(_population(6))
        store = ColumnCacheStore(tmp_path / "cols.cache")
        store.save(producer.cache)
        filtered = BasisColumnCache(1000)
        n = store.load_into(filtered, dataset_key=producer.dataset_key)
        assert n == len(producer.cache)
        assert store.load_into(BasisColumnCache(1000),
                               dataset_key=("nope", ())) == 0


class TestDamageRecovery:
    def _saved_store(self, tmp_path, seed=7):
        settings = CaffeineSettings.fast_settings()
        evaluator = _evaluator(seed, settings)
        evaluator.evaluate_population(_population(seed))
        store = ColumnCacheStore(tmp_path / "cols.cache")
        store.save(evaluator.cache)
        return store

    def test_missing_file_is_silent_cold_start(self, tmp_path):
        store = ColumnCacheStore(tmp_path / "never-written.cache")
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            assert store.load_into(BasisColumnCache(10)) == 0
        assert _no_store_warnings(recorded)

    @pytest.mark.parametrize("damage", ["truncate", "corrupt-payload",
                                        "corrupt-header", "garbage", "empty"])
    def test_damaged_files_warn_and_start_cold(self, tmp_path, damage):
        store = self._saved_store(tmp_path)
        raw = store.path.read_bytes()
        if damage == "truncate":
            store.path.write_bytes(raw[:len(raw) // 2])
        elif damage == "corrupt-payload":
            store.path.write_bytes(raw[:-40] + b"\x00" * 40)
        elif damage == "corrupt-header":
            store.path.write_bytes(b"wrong-magic\n" + raw.split(b"\n", 1)[1])
        elif damage == "garbage":
            store.path.write_bytes(b"\x93NUMPY not a cache at all")
        elif damage == "empty":
            store.path.write_bytes(b"")
        with pytest.warns(RuntimeWarning, match="column-cache"):
            assert store.load_into(BasisColumnCache(1000)) == 0

    def test_future_format_version_is_stale_not_fatal(self, tmp_path):
        store = self._saved_store(tmp_path)
        magic, version, rest = store.path.read_bytes().split(b"\n", 2)
        assert version == b"1"
        store.path.write_bytes(magic + b"\n999\n" + rest)
        with pytest.warns(RuntimeWarning, match="version"):
            assert store.load_into(BasisColumnCache(1000)) == 0


class TestRunCaffeineIntegration:
    def _train(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0.5, 2.0, size=(40, 3))
        y = 1.0 + X[:, 0] * X[:, 1] + np.sqrt(X[:, 2])
        return Dataset(X=X, y=y, variable_names=("a", "b", "c"),
                       target_name="t")

    def test_column_cache_path_round_trip_identical_models(self, tmp_path):
        train = self._train()
        settings = CaffeineSettings.fast_settings(random_seed=3)
        path = str(tmp_path / "cache" / "cols.cache")

        reference = run_caffeine(train, settings=settings)
        cold = run_caffeine(train, settings=settings, column_cache_path=path)
        assert os.path.exists(path)
        warm = run_caffeine(train, settings=settings, column_cache_path=path)

        def errors(result):
            return [(m.train_error, m.complexity) for m in result.tradeoff]

        assert errors(cold) == errors(reference)
        assert errors(warm) == errors(reference)

    def test_persistent_shared_cache_context(self, tmp_path):
        from repro.experiments.setup import persistent_shared_cache

        settings = CaffeineSettings.fast_settings()
        path = str(tmp_path / "shared.cache")
        evaluator = _evaluator(8, settings)
        with persistent_shared_cache(settings, path) as cache:
            shared = PopulationEvaluator(evaluator.X, evaluator.y, settings,
                                         cache=cache)
            shared.evaluate_population(_population(8))
            n_entries = len(cache)
        assert n_entries > 0
        assert os.path.exists(path)
        with persistent_shared_cache(settings, path) as warm_cache:
            assert len(warm_cache) == n_entries


# ----------------------------------------------------------------------
# concurrent writers (the ROADMAP's last-writer-wins hazard)
# ----------------------------------------------------------------------
def _spawn_context():
    import multiprocessing

    # fork is fastest and needs no importability gymnastics; spawn works
    # too (multiprocessing ships sys.path to the child).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _worker_keys(worker_id: int, n_entries: int):
    return [((f"dataset-{worker_id}", ("fs",)), ("col", worker_id, index))
            for index in range(n_entries)]


def _concurrent_save_worker(path, worker_id, n_entries, barrier):
    cache = BasisColumnCache(10000)
    for index, key in enumerate(_worker_keys(worker_id, n_entries)):
        cache.put(key, np.full(8, worker_id * 1000.0 + index))
    barrier.wait(timeout=60)  # line both savers up on the same instant
    ColumnCacheStore(path).save(cache)


class TestConcurrentWriters:
    def test_simultaneous_saves_lose_no_entries(self, tmp_path):
        """Two processes saving the same store at once both persist.

        Without the advisory lock this is the documented last-writer-wins
        race: both read the same base file, and whichever ``os.replace``
        lands second erases the other's namespace.  The lock serializes the
        read-merge-write cycles, so the union must survive."""
        path = str(tmp_path / "shared" / "cols.cache")
        store = ColumnCacheStore(path)

        # A pre-existing third namespace must also survive both writers.
        seeded = BasisColumnCache(100)
        seeded_key = (("dataset-seed", ("fs",)), ("col", "seed"))
        seeded.put(seeded_key, np.zeros(8))
        store.save(seeded)

        ctx = _spawn_context()
        n_entries = 20
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_concurrent_save_worker,
                        args=(path, worker_id, n_entries, barrier))
            for worker_id in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        merged = store.load(max_entries=10000)
        stored_keys = {key for key, _column in merged.items()}
        for worker_id in (1, 2):
            missing = set(_worker_keys(worker_id, n_entries)) - stored_keys
            assert not missing, (
                f"writer {worker_id} lost {len(missing)} entries to the "
                f"concurrent save")
        assert seeded_key in stored_keys
        # And the columns themselves round-tripped bit for bit.
        by_key = dict(merged.items())
        assert np.array_equal(by_key[("dataset-1", ("fs",)), ("col", 1, 3)],
                              np.full(8, 1003.0))

    def test_file_lock_is_reentrant_and_releases(self, tmp_path):
        from repro.core.cache_store import FileLock

        lock = FileLock(tmp_path / "x.lock", timeout=5.0)
        with lock:
            with lock:  # nested acquisition must not deadlock
                assert lock.held
            assert lock.held
        assert not lock.held
        # A second instance on the same path can acquire after release.
        other = FileLock(tmp_path / "x.lock", timeout=0.5)
        with other:
            assert other.held

    def test_one_shared_store_instance_is_thread_safe(self, tmp_path):
        """Two threads saving through ONE store object still serialize.

        flock cannot exclude within a process through one instance's
        reentrancy counter alone; the FileLock's internal RLock must."""
        import threading

        path = str(tmp_path / "shared" / "cols.cache")
        store = ColumnCacheStore(path)
        barrier = threading.Barrier(2)
        errors = []

        def writer(worker_id):
            try:
                cache = BasisColumnCache(10000)
                for key in _worker_keys(worker_id, 20):
                    cache.put(key, np.full(8, float(worker_id)))
                barrier.wait(timeout=30)
                store.save(cache)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        stored = {key for key, _column in store.load(10000).items()}
        for worker_id in (1, 2):
            assert not set(_worker_keys(worker_id, 20)) - stored

    def test_file_lock_excludes_other_threads_on_one_instance(self,
                                                              tmp_path):
        import threading

        from repro.core.cache_store import FileLock

        lock = FileLock(tmp_path / "x.lock", timeout=0.3)
        entered = []

        def contender():
            try:
                lock.acquire()
                entered.append(True)
                lock.release()
            except TimeoutError:
                entered.append(False)

        with lock:
            thread = threading.Thread(target=contender)
            thread.start()
            thread.join(timeout=30)
        assert entered == [False]  # blocked while the main thread held it
        with lock:  # and usable again afterwards
            assert lock.held

    def test_file_lock_excludes_other_instances(self, tmp_path):
        from repro.core.cache_store import FileLock

        lock = FileLock(tmp_path / "x.lock", timeout=5.0)
        contender = FileLock(tmp_path / "x.lock", timeout=0.2,
                             poll_interval=0.02)
        with lock:
            with pytest.raises(TimeoutError):
                contender.acquire()
        with contender:  # released holder -> contender proceeds
            assert contender.held
