"""Unit tests for the square-law MOSFET model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.mosfet import (
    MosfetModel,
    Technology,
    gm_over_id_saturation,
    required_veff,
    thermal_voltage,
)


class TestTechnology:
    def test_default_values_match_paper(self):
        tech = Technology()
        assert tech.vdd == pytest.approx(5.0)
        assert tech.vth_nmos == pytest.approx(0.76)
        assert tech.vth_pmos == pytest.approx(-0.75)

    def test_vth_and_kp_lookup(self):
        tech = Technology()
        assert tech.vth("nmos") == tech.vth_nmos
        assert tech.vth("pmos") == tech.vth_pmos
        assert tech.kp("nmos") > tech.kp("pmos")

    def test_lambda_scales_inversely_with_length(self):
        tech = Technology()
        short = tech.channel_length_modulation("nmos", 0.7)
        long = tech.channel_length_modulation("nmos", 1.4)
        assert short == pytest.approx(2.0 * long)

    def test_lambda_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Technology().channel_length_modulation("nmos", 0.0)


class TestForwardModel:
    def test_cutoff_has_zero_current(self):
        model = MosfetModel("nmos")
        assert model.drain_current(10.0, vgs=0.5, vds=1.0) == 0.0

    def test_saturation_current_square_law(self):
        model = MosfetModel("nmos")
        tech = model.technology
        width, vgs, vds = 10.0, 1.26, 2.0  # veff = 0.5
        expected = 0.5 * tech.kp_nmos * (width / 0.7) * 0.25 \
            * (1.0 + model.lam * vds)
        assert model.drain_current(width, vgs, vds) == pytest.approx(expected)

    def test_current_increases_with_width_and_vgs(self):
        model = MosfetModel("pmos")
        low = model.drain_current(10.0, 1.0, 2.0)
        assert model.drain_current(20.0, 1.0, 2.0) > low
        assert model.drain_current(10.0, 1.2, 2.0) > low

    def test_triode_current_below_saturation(self):
        model = MosfetModel("nmos")
        triode = model.drain_current(10.0, vgs=1.76, vds=0.2)
        saturation = model.drain_current(10.0, vgs=1.76, vds=2.0)
        assert 0.0 < triode < saturation

    def test_evaluate_reports_region(self):
        model = MosfetModel("nmos")
        assert model.evaluate(10.0, 0.3, 1.0).region == "cutoff"
        assert model.evaluate(10.0, 1.76, 0.2).region == "triode"
        assert model.evaluate(10.0, 1.26, 2.0).region == "saturation"

    def test_conductances_positive_in_saturation(self):
        model = MosfetModel("nmos")
        gm, gds = model.conductances(10.0, 1.26, 2.0)
        assert gm > 0.0
        assert gds > 0.0
        assert gm > gds

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            MosfetModel("nmos").drain_current(-1.0, 1.0, 1.0)

    def test_invalid_polarity(self):
        with pytest.raises(ValueError):
            MosfetModel("njfet")


class TestOperatingPointModel:
    def test_width_realizes_requested_current(self):
        """The operating-point inversion must be consistent with the forward model."""
        model = MosfetModel("nmos")
        op = model.from_operating_point(id=100e-6, vgs=1.1, vds=1.5)
        forward = model.drain_current(op.width_um, vgs=1.1, vds=1.5)
        assert forward == pytest.approx(100e-6, rel=1e-9)

    def test_gm_matches_two_id_over_veff(self):
        model = MosfetModel("pmos")
        op = model.from_operating_point(id=40e-6, vgs=1.0, vds=1.2)
        assert op.gm == pytest.approx(2.0 * 40e-6 / op.veff)
        assert op.gm_over_id == pytest.approx(2.0 / op.veff)

    def test_larger_current_needs_wider_device(self):
        model = MosfetModel("nmos")
        narrow = model.from_operating_point(10e-6, 1.1, 1.0).width_um
        wide = model.from_operating_point(100e-6, 1.1, 1.0).width_um
        assert wide == pytest.approx(10.0 * narrow, rel=1e-9)

    def test_capacitances_scale_with_width(self):
        model = MosfetModel("nmos")
        small = model.from_operating_point(10e-6, 1.1, 1.0)
        large = model.from_operating_point(100e-6, 1.1, 1.0)
        assert large.cgs == pytest.approx(10.0 * small.cgs, rel=1e-9)
        assert large.cdb > small.cdb

    def test_subthreshold_bias_rejected(self):
        model = MosfetModel("nmos")
        with pytest.raises(ValueError):
            model.from_operating_point(id=1e-6, vgs=0.5, vds=1.0)

    def test_nonpositive_current_rejected(self):
        with pytest.raises(ValueError):
            MosfetModel("nmos").from_operating_point(id=0.0, vgs=1.2, vds=1.0)

    def test_intrinsic_gain_reasonable(self):
        op = MosfetModel("nmos").from_operating_point(20e-6, 1.0, 2.0)
        assert 10.0 < op.intrinsic_gain < 1000.0


class TestHelpers:
    def test_thermal_voltage_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_gm_over_id(self):
        assert gm_over_id_saturation(0.2) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            gm_over_id_saturation(0.0)

    def test_required_veff(self):
        beta = 1e-3
        id = 0.5 * beta * 0.04  # veff = 0.2
        assert required_veff(id, beta) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            required_veff(1e-6, 0.0)
