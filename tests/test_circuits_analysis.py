"""Tests for netlists, MNA assembly, DC and AC analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.ac import ac_analysis, logspace_frequencies, transfer_function
from repro.circuits.dc import ConvergenceError, solve_dc
from repro.circuits.mna import MnaIndex, build_linear_system
from repro.circuits.mosfet import MosfetModel
from repro.circuits.netlist import Capacitor, Circuit, Resistor
from repro.circuits.performance import (
    FrequencyResponse,
    gain_db,
    phase_margin_from_poles,
    unity_gain_frequency_from_poles,
)


class TestNetlist:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.resistor("r1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            circuit.resistor("r1", "b", "0", 1e3)

    def test_node_names_exclude_ground(self):
        circuit = Circuit()
        circuit.resistor("r1", "a", "0", 1e3)
        circuit.resistor("r2", "a", "b", 1e3)
        assert circuit.node_names() == ("a", "b")

    def test_element_lookup_and_contains(self):
        circuit = Circuit()
        circuit.capacitor("c1", "a", "0", 1e-12)
        assert "c1" in circuit
        assert isinstance(circuit["c1"], Capacitor)
        assert len(circuit) == 1

    def test_invalid_resistor_and_capacitor(self):
        with pytest.raises(ValueError):
            Resistor("r", "a", "0", resistance=0.0)
        with pytest.raises(ValueError):
            Capacitor("c", "a", "0", capacitance=-1.0)

    def test_summary_lists_elements(self):
        circuit = Circuit("demo")
        circuit.resistor("r1", "a", "0", 1e3)
        assert "r1" in circuit.summary()


class TestMna:
    def test_index_counts_nodes_and_sources(self):
        circuit = Circuit()
        circuit.voltage_source("v1", "a", "0", dc=1.0)
        circuit.resistor("r1", "a", "b", 1e3)
        circuit.resistor("r2", "b", "0", 1e3)
        index = MnaIndex.from_circuit(circuit)
        assert index.n_nodes == 2
        assert index.n_sources == 1
        assert index.size == 3
        assert index.node("0") == -1

    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.voltage_source("v1", "a", "0", dc=2.0)
        circuit.resistor("r1", "a", "b", 1e3)
        circuit.resistor("r2", "b", "0", 3e3)
        index = MnaIndex.from_circuit(circuit)
        matrix, rhs = build_linear_system(circuit, index)
        solution = np.linalg.solve(matrix, rhs)
        assert solution[index.node("b")] == pytest.approx(1.5)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.current_source("i1", "0", "a", dc=1e-3)
        circuit.resistor("r1", "a", "0", 2e3)
        index = MnaIndex.from_circuit(circuit)
        matrix, rhs = build_linear_system(circuit, index)
        solution = np.linalg.solve(matrix, rhs)
        assert solution[index.node("a")] == pytest.approx(2.0)


class TestDcAnalysis:
    def test_resistive_divider_via_solver(self):
        circuit = Circuit()
        circuit.voltage_source("vs", "in", "0", dc=5.0)
        circuit.resistor("ra", "in", "mid", 10e3)
        circuit.resistor("rb", "mid", "0", 10e3)
        solution = solve_dc(circuit)
        assert solution.voltage("mid") == pytest.approx(2.5)
        assert solution.voltage("0") == 0.0

    def test_source_current_sign(self):
        circuit = Circuit()
        circuit.voltage_source("vs", "a", "0", dc=1.0)
        circuit.resistor("r", "a", "0", 1e3)
        solution = solve_dc(circuit)
        # 1 mA flows out of the source's positive terminal through the resistor.
        assert abs(solution.source_currents["vs"]) == pytest.approx(1e-3)

    def test_diode_connected_nmos_settles_in_saturation(self):
        nmos = MosfetModel("nmos")
        circuit = Circuit()
        circuit.voltage_source("vdd", "vdd", "0", dc=5.0)
        circuit.resistor("rbias", "vdd", "d", 100e3)
        circuit.mosfet("m1", "d", "d", "0", nmos, width_um=10.0)
        solution = solve_dc(circuit)
        device = solution.device("m1")
        assert device.region == "saturation"
        # The gate-drain connection forces vgs = vds above threshold.
        assert device.vgs > nmos.vth_magnitude
        # Current consistency: resistor current equals device current.
        resistor_current = (5.0 - solution.voltage("d")) / 100e3
        assert device.id == pytest.approx(resistor_current, rel=1e-3)

    def test_common_source_amplifier_gain(self):
        nmos = MosfetModel("nmos")
        circuit = Circuit()
        circuit.voltage_source("vdd", "vdd", "0", dc=5.0)
        circuit.voltage_source("vin", "g", "0", dc=1.2, ac=1.0)
        circuit.resistor("rl", "vdd", "d", 20e3)
        circuit.mosfet("m1", "d", "g", "0", nmos, width_um=5.0)
        solution = solve_dc(circuit)
        device = solution.device("m1")
        assert device.region == "saturation"
        frequencies = [10.0, 100.0]
        response = transfer_function(circuit, "vin", "d", frequencies,
                                     dc_solution=solution)
        hand_gain = device.gm / (1.0 / 20e3 + device.gds)
        assert abs(response[0]) == pytest.approx(hand_gain, rel=0.05)

    def test_singular_circuit_raises(self):
        # A floating node with no DC path cannot be solved.
        circuit = Circuit()
        circuit.capacitor("c1", "a", "0", 1e-12)
        circuit.current_source("i1", "0", "a", dc=1e-3)
        with pytest.raises(ConvergenceError):
            solve_dc(circuit)


class TestAcAnalysis:
    def test_rc_lowpass_corner(self):
        resistance, capacitance = 1e3, 1e-9  # corner at ~159 kHz
        circuit = Circuit()
        circuit.voltage_source("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.resistor("r1", "in", "out", resistance)
        circuit.capacitor("c1", "out", "0", capacitance)
        corner = 1.0 / (2 * np.pi * resistance * capacitance)
        response = transfer_function(circuit, "vin", "out", [corner / 100, corner])
        assert abs(response[0]) == pytest.approx(1.0, abs=1e-3)
        assert abs(response[1]) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)

    def test_requires_nonzero_ac_magnitude(self):
        circuit = Circuit()
        circuit.voltage_source("vin", "in", "0", dc=1.0, ac=0.0)
        circuit.resistor("r1", "in", "0", 1e3)
        with pytest.raises(ValueError):
            transfer_function(circuit, "vin", "in", [1.0, 10.0])

    def test_logspace_frequencies(self):
        freqs = logspace_frequencies(1.0, 1e3, points_per_decade=10)
        assert freqs[0] == pytest.approx(1.0)
        assert freqs[-1] == pytest.approx(1e3)
        assert np.all(np.diff(np.log10(freqs)) > 0)

    def test_ac_sweep_returns_all_nodes(self):
        circuit = Circuit()
        circuit.voltage_source("vin", "a", "0", dc=0.0, ac=1.0)
        circuit.resistor("r1", "a", "b", 1e3)
        circuit.resistor("r2", "b", "0", 1e3)
        sweep = ac_analysis(circuit, [1.0, 10.0, 100.0])
        assert sweep.n_points == 3
        assert np.allclose(np.abs(sweep.voltage("b")), 0.5)


class TestPerformanceExtraction:
    def test_gain_db(self):
        assert gain_db(10.0) == pytest.approx(20.0)
        assert gain_db(0.0) == float("-inf")

    def test_single_pole_response_metrics(self):
        gain, pole = 1000.0, 1e3
        freqs = np.logspace(0, 8, 400)
        response = gain / (1.0 + 1j * freqs / pole)
        fr = FrequencyResponse(freqs, response)
        assert fr.dc_gain() == pytest.approx(gain, rel=1e-3)
        assert fr.unity_gain_frequency() == pytest.approx(gain * pole, rel=0.02)
        assert fr.phase_margin() == pytest.approx(90.0, abs=1.0)

    def test_no_unity_crossing_gives_nan(self):
        freqs = np.logspace(0, 3, 50)
        fr = FrequencyResponse(freqs, 0.5 / (1.0 + 1j * freqs / 1e2))
        assert np.isnan(fr.unity_gain_frequency())
        assert np.isnan(fr.phase_margin())

    def test_pole_based_formulas(self):
        fu = unity_gain_frequency_from_poles(1000.0, 1e3)
        assert fu == pytest.approx(1e6)
        pm = phase_margin_from_poles(1e6, [1e7])
        assert pm == pytest.approx(90.0 - np.degrees(np.arctan(0.1)), rel=1e-6)
        pm_with_zero = phase_margin_from_poles(1e6, [1e7], zeros_hz=[1e7])
        assert pm_with_zero == pytest.approx(90.0, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            unity_gain_frequency_from_poles(-1.0, 1e3)
        with pytest.raises(ValueError):
            phase_margin_from_poles(1e6, [-1.0])
        with pytest.raises(ValueError):
            FrequencyResponse(np.array([1.0]), np.array([1.0 + 0j]))
