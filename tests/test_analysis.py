"""The invariant linter: every rule, the waiver layer, config, CLI, self-check.

Each rule gets a paired trigger / non-trigger fixture (written into a
``src/repro/...``-shaped tmp tree so module scoping resolves exactly like
the real package).  The waiver grammar is exercised in all its failure
modes, the ``--format json`` schema is pinned, and the repo lints itself
clean -- including the property that deleting any single waiver in the
tree resurfaces at least one finding.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    LintEngine,
    Rule,
    active_rules,
    get_rule,
    module_name_for,
    register_rule,
    rule_ids,
    unregister_rule,
)
from repro.analysis.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"


def lint_source(tmp_path, relative, source, config=None):
    """Lint ``source`` placed at ``tmp_path/relative``; return all findings."""
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    engine = LintEngine(config=config if config is not None else LintConfig())
    return engine.lint_file(path)


def rules_hit(findings, *, include_waived=False):
    return {f.rule for f in findings if include_waived or not f.waived}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRuleRegistry:
    def test_at_least_eight_active_rules(self):
        dispatched = [r for r in active_rules() if r.node_types]
        assert len(dispatched) >= 8

    def test_ids_and_metadata_present(self):
        expected = {"bit-identity", "errstate", "determinism",
                    "spawn-safety", "crash-safety", "fault-spec",
                    "unordered-iter", "registry-hygiene"}
        assert expected <= set(rule_ids())
        for rule_id in sorted(expected):
            rule = get_rule(rule_id)
            assert rule.summary and rule.hint and rule.explain

    def test_register_round_trip_and_shadow_guard(self):
        class Custom(Rule):
            id = "x-custom"
            summary = "test rule"
            node_types = ()

            def visit(self, node, ctx):
                return ()

        register_rule(Custom())
        try:
            assert "x-custom" in rule_ids()
            with pytest.raises(ValueError):
                register_rule(Custom())
            register_rule(Custom(), replace=True)
        finally:
            unregister_rule("x-custom")
        assert "x-custom" not in rule_ids()
        with pytest.raises(KeyError):
            get_rule("x-custom")


# ----------------------------------------------------------------------
# module scoping
# ----------------------------------------------------------------------
class TestModuleScoping:
    def test_src_layout_resolution(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "engine.py"
        path.parent.mkdir(parents=True)
        path.write_text("")
        assert module_name_for(path) == "repro.core.engine"

    def test_package_init_resolution(self, tmp_path):
        path = tmp_path / "src" / "repro" / "gp" / "__init__.py"
        path.parent.mkdir(parents=True)
        path.write_text("")
        assert module_name_for(path) == "repro.gp"

    def test_real_repo_paths(self):
        assert module_name_for(
            REPO_SRC / "repro" / "core" / "compile.py") == "repro.core.compile"


# ----------------------------------------------------------------------
# rule 1: bit-identity
# ----------------------------------------------------------------------
class TestBitIdentityRule:
    TRIGGER = ("import numpy as np\n"
               "def f(a, b):\n"
               "    return a @ b\n")

    def test_matmul_in_scope_triggers(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/regression/custom.py", self.TRIGGER)
        assert "bit-identity" in rules_hit(findings)

    def test_np_dot_and_einsum_trigger(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f(a, b):\n"
                  "    x = np.dot(a, b)\n"
                  "    return np.einsum('ij,j->i', a, b) + x\n")
        findings = lint_source(
            tmp_path, "src/repro/core/evaluation.py", source)
        hits = [f for f in findings if f.rule == "bit-identity"]
        assert len(hits) == 2

    def test_method_style_dot_triggers(self, tmp_path):
        source = "def f(a, b):\n    return a.dot(b)\n"
        findings = lint_source(
            tmp_path, "src/repro/regression/custom.py", source)
        assert "bit-identity" in rules_hit(findings)

    def test_out_of_scope_module_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/serve/custom.py", self.TRIGGER)
        assert "bit-identity" not in rules_hit(findings)

    def test_canonical_recipe_is_clean(self, tmp_path):
        source = ("from repro.regression.least_squares import pair_dots\n"
                  "def f(rows):\n"
                  "    return pair_dots(rows, rows)\n")
        findings = lint_source(
            tmp_path, "src/repro/regression/custom.py", source)
        assert "bit-identity" not in rules_hit(findings)


# ----------------------------------------------------------------------
# rule 2: errstate
# ----------------------------------------------------------------------
class TestErrstateRule:
    def test_bare_elementwise_in_kernel_module_triggers(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f(x):\n"
                  "    y = np.log(x)\n"
                  "    return y / (x - 1.0)\n")
        findings = lint_source(tmp_path, "src/repro/core/compile.py", source)
        assert "errstate" in rules_hit(findings)

    def test_under_errstate_is_clean(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f(x):\n"
                  "    with np.errstate(all='ignore'):\n"
                  "        y = np.log(x)\n"
                  "        return y / (x - 1.0)\n")
        findings = lint_source(tmp_path, "src/repro/core/compile.py", source)
        assert "errstate" not in rules_hit(findings)

    def test_single_return_wrapper_exempt(self, tmp_path):
        source = ("import numpy as np\n"
                  "def _sqrt(x):\n"
                  "    return np.sqrt(x)\n")
        findings = lint_source(
            tmp_path, "src/repro/core/functions.py", source)
        assert "errstate" not in rules_hit(findings)

    def test_lambda_table_exempt(self, tmp_path):
        source = ("import numpy as np\n"
                  "TABLE = {'inv': lambda a: 1.0 / a}\n")
        findings = lint_source(tmp_path, "src/repro/gp/nodes.py", source)
        assert "errstate" not in rules_hit(findings)

    def test_out_of_scope_module_ignored(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f(x):\n"
                  "    y = np.log(x)\n"
                  "    return y + 1\n")
        findings = lint_source(tmp_path, "src/repro/core/report.py", source)
        assert "errstate" not in rules_hit(findings)


# ----------------------------------------------------------------------
# rule 3: determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_stdlib_random_triggers(self, tmp_path):
        source = ("import random\n"
                  "def f():\n"
                  "    return random.random()\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "determinism" in rules_hit(findings)

    def test_numpy_global_rng_triggers(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f():\n"
                  "    return np.random.rand(3)\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "determinism" in rules_hit(findings)

    def test_seedless_default_rng_triggers(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f():\n"
                  "    return np.random.default_rng()\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "determinism" in rules_hit(findings)

    def test_wall_clock_triggers(self, tmp_path):
        source = ("import time\n"
                  "def f():\n"
                  "    return time.time()\n")
        findings = lint_source(tmp_path, "src/repro/core/custom.py", source)
        assert "determinism" in rules_hit(findings)

    def test_from_random_import_triggers(self, tmp_path):
        source = "from random import choice\n"
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "determinism" in rules_hit(findings)

    def test_seeded_generator_is_clean(self, tmp_path):
        source = ("import numpy as np\n"
                  "def f(seed):\n"
                  "    return np.random.default_rng(seed).random()\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "determinism" not in rules_hit(findings)

    def test_scripts_outside_repro_scope_ignored(self, tmp_path):
        source = ("import time\n"
                  "def f():\n"
                  "    return time.time()\n")
        findings = lint_source(tmp_path, "benchmarks/bench_custom.py", source)
        assert "determinism" not in rules_hit(findings)


# ----------------------------------------------------------------------
# rule 4: spawn-safety
# ----------------------------------------------------------------------
class TestSpawnSafetyRule:
    def test_lambda_factory_triggers(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "register_backend('pareto', 'mine', lambda: None)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "spawn-safety" in rules_hit(findings)

    def test_nested_function_factory_triggers(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "def install():\n"
                  "    def factory():\n"
                  "        return None\n"
                  "    register_backend('pareto', 'mine', factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "spawn-safety" in rules_hit(findings)

    def test_bound_method_initializer_triggers(self, tmp_path):
        source = ("from concurrent.futures import ProcessPoolExecutor\n"
                  "class Runner:\n"
                  "    def start(self):\n"
                  "        return ProcessPoolExecutor(\n"
                  "            2, initializer=self.setup)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "spawn-safety" in rules_hit(findings)

    def test_module_level_factory_is_clean(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "def factory():\n"
                  "    return None\n"
                  "register_backend('pareto', 'mine', factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "spawn-safety" not in rules_hit(findings)

    def test_imported_module_function_is_clean(self, tmp_path):
        source = ("import repro.ext_impl\n"
                  "from repro.core.registry import register_backend\n"
                  "register_backend('pareto', 'mine', "
                  "repro.ext_impl.factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "spawn-safety" not in rules_hit(findings)


# ----------------------------------------------------------------------
# rule 5: crash-safety
# ----------------------------------------------------------------------
class TestCrashSafetyRule:
    def test_raw_write_to_store_path_triggers(self, tmp_path):
        source = ("def save(path):\n"
                  "    with open(path + '.ckpt', 'w') as fh:\n"
                  "        fh.write('data')\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "crash-safety" in rules_hit(findings)

    def test_pickle_dump_triggers(self, tmp_path):
        source = ("import pickle\n"
                  "def save(obj, fh):\n"
                  "    pickle.dump(obj, fh)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "crash-safety" in rules_hit(findings)

    def test_unbounded_filelock_triggers(self, tmp_path):
        source = ("from repro.core.cache_store import FileLock\n"
                  "lock = FileLock('x.cache.lock', timeout=None)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "crash-safety" in rules_hit(findings)

    def test_read_and_non_store_write_are_clean(self, tmp_path):
        source = ("def load(path):\n"
                  "    with open(path + '.ckpt') as fh:\n"
                  "        data = fh.read()\n"
                  "    with open('notes.txt', 'w') as fh:\n"
                  "        fh.write(data)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "crash-safety" not in rules_hit(findings)

    def test_bounded_filelock_is_clean(self, tmp_path):
        source = ("from repro.core.cache_store import FileLock\n"
                  "lock = FileLock('x.cache.lock', timeout=5.0)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "crash-safety" not in rules_hit(findings)


# ----------------------------------------------------------------------
# rule 6: fault-spec
# ----------------------------------------------------------------------
class TestFaultSpecRule:
    def test_unknown_point_triggers(self, tmp_path):
        source = ("import os\n"
                  "os.environ['REPRO_FAULTS'] = 'worker.kil:times=1'\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "fault-spec" in rules_hit(findings)

    def test_malformed_spec_triggers(self, tmp_path):
        source = ("def run(make):\n"
                  "    return make(fault_injection='worker.kill:delay')\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "fault-spec" in rules_hit(findings)

    def test_monkeypatch_setenv_checked(self, tmp_path):
        source = ("def test_x(monkeypatch):\n"
                  "    monkeypatch.setenv('REPRO_FAULTS', 'store.corupt')\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "fault-spec" in rules_hit(findings)

    def test_valid_spec_is_clean(self, tmp_path):
        source = ("import os\n"
                  "os.environ['REPRO_FAULTS'] = "
                  "'worker.kill:problem=PM:times=1, problem.stall:delay=2'\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "fault-spec" not in rules_hit(findings)

    def test_registry_matches_docstring_table(self):
        from repro.core import faults

        assert set(faults.KNOWN_FAULT_POINTS) == {
            "worker.kill", "worker.exception", "problem.stall",
            "fit.exception", "lock.timeout", "store.kill-mid-save",
            "store.corrupt"}
        for point in faults.KNOWN_FAULT_POINTS:
            assert f"``{point}``" in faults.__doc__


# ----------------------------------------------------------------------
# rule 7: unordered-iter
# ----------------------------------------------------------------------
class TestUnorderedIterRule:
    def test_set_literal_iteration_triggers(self, tmp_path):
        source = ("def f(acc):\n"
                  "    for x in {1, 2, 3}:\n"
                  "        acc.append(x)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "unordered-iter" in rules_hit(findings)

    def test_set_call_and_comprehension_trigger(self, tmp_path):
        source = ("def f(items):\n"
                  "    return [x for x in set(items)]\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "unordered-iter" in rules_hit(findings)

    def test_local_set_variable_triggers(self, tmp_path):
        source = ("def f(items, acc):\n"
                  "    seen = set(items)\n"
                  "    for x in seen:\n"
                  "        acc.append(x)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "unordered-iter" in rules_hit(findings)

    def test_sorted_set_is_clean(self, tmp_path):
        source = ("def f(items, acc):\n"
                  "    for x in sorted(set(items)):\n"
                  "        acc.append(x)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "unordered-iter" not in rules_hit(findings)

    def test_dict_iteration_is_clean(self, tmp_path):
        source = ("def f(mapping, acc):\n"
                  "    for key in mapping:\n"
                  "        acc.append(key)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "unordered-iter" not in rules_hit(findings)


# ----------------------------------------------------------------------
# rule 8: registry-hygiene
# ----------------------------------------------------------------------
class TestRegistryHygieneRule:
    def test_wrong_arity_triggers(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "def factory(a, b):\n"
                  "    return None\n"
                  "register_backend('fit', 'mine', factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "registry-hygiene" in rules_hit(findings)

    def test_unknown_kind_triggers(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "def factory():\n"
                  "    return None\n"
                  "register_backend('fits', 'mine', factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "registry-hygiene" in rules_hit(findings)

    def test_correct_contract_is_clean(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "def fit_factory(evaluator):\n"
                  "    return None\n"
                  "def column_factory(X, settings):\n"
                  "    return None\n"
                  "register_backend('fit', 'mine', fit_factory)\n"
                  "register_backend('column', 'mine', column_factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "registry-hygiene" not in rules_hit(findings)

    def test_defaults_and_varargs_satisfy_contract(self, tmp_path):
        source = ("from repro.core.registry import register_backend\n"
                  "def factory(evaluator, extra=None):\n"
                  "    return None\n"
                  "register_backend('fit', 'mine', factory)\n")
        findings = lint_source(tmp_path, "src/repro/ext.py", source)
        assert "registry-hygiene" not in rules_hit(findings)


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------
WAIVER_TRIGGER = ("import random\n"
                  "def f():\n"
                  "    # repro-lint: allow[determinism] -- test fixture\n"
                  "    return random.random()\n")


class TestWaivers:
    def test_valid_waiver_suppresses_and_carries_reason(self, tmp_path):
        findings = lint_source(
            tmp_path, "src/repro/gp/custom.py", WAIVER_TRIGGER)
        waived = [f for f in findings if f.waived]
        assert len(waived) == 1
        assert waived[0].rule == "determinism"
        assert waived[0].waiver_reason == "test fixture"
        assert not [f for f in findings if not f.waived]

    def test_same_line_waiver_works(self, tmp_path):
        source = ("import random\n"
                  "def f():\n"
                  "    return random.random()  "
                  "# repro-lint: allow[determinism] -- test fixture\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert all(f.waived for f in findings)

    def test_waiver_without_reason_is_a_finding(self, tmp_path):
        source = ("import random\n"
                  "def f():\n"
                  "    # repro-lint: allow[determinism]\n"
                  "    return random.random()\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        hit = rules_hit(findings)
        assert "waiver-syntax" in hit
        assert "determinism" in hit  # the broken waiver suppresses nothing

    def test_unknown_rule_in_waiver_is_a_finding(self, tmp_path):
        source = ("import random\n"
                  "def f():\n"
                  "    # repro-lint: allow[no-such-rule] -- because\n"
                  "    return random.random()\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "waiver-syntax" in rules_hit(findings)

    def test_wrong_rule_waiver_does_not_suppress(self, tmp_path):
        source = ("import random\n"
                  "def f():\n"
                  "    # repro-lint: allow[bit-identity] -- wrong rule\n"
                  "    return random.random()\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        hit = rules_hit(findings)
        assert "determinism" in hit
        assert "waiver-unused" in hit

    def test_unknown_directive_is_a_finding(self, tmp_path):
        source = "# repro-lint: silence[determinism] -- nope\n"
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "waiver-syntax" in rules_hit(findings)

    def test_stale_waiver_is_a_finding(self, tmp_path):
        source = ("def f():\n"
                  "    # repro-lint: allow[determinism] -- nothing here\n"
                  "    return 1\n")
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "waiver-unused" in rules_hit(findings)

    def test_unwaivable_rules_cannot_be_waived(self, tmp_path):
        source = "# repro-lint: allow[waiver-unused] -- meta\n"
        findings = lint_source(tmp_path, "src/repro/gp/custom.py", source)
        assert "waiver-syntax" in rules_hit(findings)

    def test_multi_rule_waiver(self, tmp_path):
        source = ("import numpy as np\n"
                  "import random\n"
                  "def f(a, b):\n"
                  "    # repro-lint: allow[bit-identity, determinism] "
                  "-- fixture exercising a two-rule waiver\n"
                  "    return (a @ b) + random.random()\n")
        findings = lint_source(
            tmp_path, "src/repro/regression/custom.py", source)
        assert not [f for f in findings if not f.waived]
        assert len([f for f in findings if f.waived]) == 2


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestLintConfig:
    def test_pyproject_round_trip(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\n'
            'exclude = ["*/generated/*"]\n'
            'disable = ["unordered-iter"]\n'
            '[tool.repro-lint.rules.determinism]\n'
            'scope = ["repro.core"]\n')
        config = LintConfig.load(tmp_path)
        assert config.exclude == ("*/generated/*",)
        assert config.disable == ("unordered-iter",)
        assert config.rule_scopes["determinism"] == ("repro.core",)

    def test_disable_turns_rule_off(self, tmp_path):
        source = ("def f(acc):\n"
                  "    for x in {1, 2}:\n"
                  "        acc.append(x)\n")
        config = LintConfig(disable=("unordered-iter",))
        findings = lint_source(tmp_path, "src/repro/ext.py", source,
                               config=config)
        assert "unordered-iter" not in rules_hit(findings)

    def test_scope_override_widens_rule(self, tmp_path):
        source = ("import time\n"
                  "def f():\n"
                  "    return time.time()\n")
        config = LintConfig(rule_scopes={"determinism": None})
        findings = lint_source(tmp_path, "scripts_dir/tool.py", source,
                               config=config)
        assert "determinism" in rules_hit(findings)

    def test_repo_pyproject_parses(self):
        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        assert config.rule_scopes.get("determinism") == ("repro",)


# ----------------------------------------------------------------------
# the CLI and the JSON schema
# ----------------------------------------------------------------------
class TestCli:
    def test_json_schema_stability(self, tmp_path):
        target = tmp_path / "src" / "repro" / "gp" / "custom.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n"
                          "def f():\n"
                          "    return random.random()\n")
        stream = io.StringIO()
        code = lint_main([str(target), "--format", "json"], stream=stream)
        assert code == 1
        document = json.loads(stream.getvalue())
        assert set(document) == {"schema", "tool", "n_files", "n_findings",
                                 "n_waived", "rule_counts", "findings",
                                 "waived"}
        assert document["schema"] == 1
        assert document["tool"] == "repro-lint"
        assert document["n_files"] == 1
        assert document["rule_counts"] == {"determinism": 1}
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message",
                                "hint", "waived", "waiver_reason"}
        assert finding["rule"] == "determinism"
        assert finding["line"] == 3

    def test_github_format_emits_annotations(self, tmp_path):
        target = tmp_path / "src" / "repro" / "gp" / "custom.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nx = random.random()\n")
        stream = io.StringIO()
        code = lint_main([str(target), "--format", "github"], stream=stream)
        assert code == 1
        assert "::error file=" in stream.getvalue()
        assert "title=repro-lint determinism" in stream.getvalue()

    def test_clean_tree_exits_zero(self, tmp_path):
        target = tmp_path / "src" / "repro" / "gp" / "custom.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f():\n    return 1\n")
        stream = io.StringIO()
        assert lint_main([str(target)], stream=stream) == 0
        assert "OK:" in stream.getvalue()

    def test_unknown_explain_exits_two(self):
        assert lint_main(["--explain", "no-such-rule"],
                         stream=io.StringIO()) == 2

    def test_explain_prints_provenance(self):
        stream = io.StringIO()
        assert lint_main(["--explain", "bit-identity"], stream=stream) == 0
        text = stream.getvalue()
        assert "pair_dots" in text
        assert "PR 2" in text

    def test_list_rules(self):
        stream = io.StringIO()
        assert lint_main(["--list-rules"], stream=stream) == 0
        for rule_id in ("bit-identity", "errstate", "determinism",
                        "spawn-safety", "crash-safety", "fault-spec",
                        "unordered-iter", "registry-hygiene"):
            assert rule_id in stream.getvalue()

    def test_missing_path_exits_two(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.py")],
                         stream=io.StringIO()) == 2

    def test_parse_error_reported(self, tmp_path):
        target = tmp_path / "src" / "repro" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(:\n")
        stream = io.StringIO()
        assert lint_main([str(target)], stream=stream) == 1
        assert "parse-error" in stream.getvalue()


# ----------------------------------------------------------------------
# the repo lints itself
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_repo_src_is_clean(self):
        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        report = LintEngine(config=config).lint_paths([REPO_SRC])
        assert report.findings == [], [f.location() for f in report.findings]
        assert report.n_files > 50
        assert len(report.waived) > 0
        assert all(f.waiver_reason for f in report.waived)

    def test_cli_entry_point_is_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src/"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
                 "HOME": "/tmp"})
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK:" in result.stdout

    def test_deleting_any_waiver_resurfaces_a_finding(self, tmp_path):
        from repro.analysis.waivers import collect_waivers

        config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
        engine = LintEngine(config=config)
        known = set(rule_ids())
        waiver_sites = []
        for path in sorted(REPO_SRC.rglob("*.py")):
            waivers, _ = collect_waivers(path.read_text(), str(path), known)
            waiver_sites.extend((path, w.line - 1) for w in waivers)
        assert len(waiver_sites) >= 10  # the burned-down inventory
        for path, index in waiver_sites:
            lines = path.read_text().splitlines(keepends=True)
            del lines[index]
            mirror = tmp_path / path.relative_to(REPO_ROOT)
            mirror.parent.mkdir(parents=True, exist_ok=True)
            mirror.write_text("".join(lines))
            findings = [f for f in engine.lint_file(mirror) if not f.waived]
            assert findings, (f"deleting the waiver at {path}:{index + 1} "
                              f"surfaced no finding")
            mirror.unlink()
