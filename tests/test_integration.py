"""End-to-end integration tests: the paper's flow on the OTA substrate.

These exercise the complete pipeline -- DOE sampling, circuit simulation,
CAFFEINE with simplification, posynomial baseline, experiment drivers -- with
small but non-trivial budgets, and assert the qualitative findings of the
paper's evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.settings import CaffeineSettings
from repro.experiments import run_caffeine_for_target, run_figure4, run_table1
from repro.posynomial import fit_posynomial


@pytest.fixture(scope="module")
def settings():
    # Seed 1 yields a rich (5-model) SRp trade-off at this small budget under
    # the corrected distinct-index tournament selection; the qualitative
    # assertions below hold across seeds, but richer fronts make them sharper.
    return CaffeineSettings(population_size=50, n_generations=15, random_seed=1)


@pytest.fixture(scope="module")
def srp_result(ota_datasets_full, settings):
    return run_caffeine_for_target(ota_datasets_full, "SRp", settings)


class TestEndToEndSlewRate:
    def test_tradeoff_spans_constant_to_accurate(self, srp_result):
        tradeoff = srp_result.tradeoff
        assert len(tradeoff) >= 3
        # The trade-off spans from a (near-)constant model with the highest
        # error to an accurate multi-basis model.
        assert tradeoff[0].complexity < tradeoff[-1].complexity
        assert tradeoff[0].train_error > tradeoff[-1].train_error

    def test_reaches_paper_accuracy_band(self, srp_result):
        """SRp must be modeled to < 10% train and test error (Table I row)."""
        eligible = srp_result.tradeoff.within_error(0.10, 0.10)
        assert not eligible.is_empty
        model = eligible.simplest()
        # Compact: a handful of basis functions, not dozens of terms.
        assert model.n_bases <= 6

    def test_testing_error_close_to_or_below_training_error(self, srp_result):
        """The interpolation effect the paper highlights."""
        best = srp_result.best_model(by="test")
        assert best.test_error <= best.train_error * 1.5

    def test_model_uses_physical_variables(self, srp_result):
        """Slew-rate models should be driven by the output-branch current."""
        best = srp_result.tradeoff.most_accurate(by="train")
        assert "id2" in best.used_variables() or "id1" in best.used_variables()

    def test_models_evaluate_on_fresh_points(self, srp_result, ota_datasets_full):
        train, test = ota_datasets_full.for_target("SRp")
        model = srp_result.best_model()
        predictions = model.predict(test.X)
        assert np.all(np.isfinite(predictions))
        # Predictions are in the physical range of the data (V/s, ~1e6..1e8).
        assert np.all(predictions > 1e5)
        assert np.all(predictions < 1e9)


class TestCaffeineVsPosynomial:
    def test_figure4_shape_on_two_targets(self, ota_datasets_full, settings,
                                          srp_result):
        figure4 = run_figure4(ota_datasets_full, settings, targets=("SRp", "ALF"),
                              results={"SRp": srp_result})
        for row in figure4.rows:
            assert row.caffeine_model.n_bases <= 15
            assert row.posynomial_model.n_terms >= row.caffeine_model.n_bases
        # CAFFEINE wins on at least one of the two performances even at this
        # reduced budget (the paper reports wins on 5 of 6).
        assert len(figure4.caffeine_wins()) >= 1

    def test_posynomial_alone_on_full_data(self, ota_datasets_full):
        train, test = ota_datasets_full.for_target("ALF")
        model = fit_posynomial(train, test)
        assert model.train_error < 0.10
        assert np.isfinite(model.test_error)


class TestTable1EndToEnd:
    def test_table1_satisfied_for_easy_targets(self, ota_datasets_full, settings,
                                               srp_result):
        table1 = run_table1(ota_datasets_full, settings, targets=("SRp",),
                            results={"SRp": srp_result})
        row = table1.row("SRp")
        assert row.satisfied
        assert row.model.train_error < 0.10
        assert row.model.test_error < 0.10
        # The expression is interpretable: it fits on a line of text.
        assert len(row.expression) < 300
