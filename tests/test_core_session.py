"""Problem/Session orchestration: shim equality, parallel runs, callbacks."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.cache_store import ColumnCacheStore
from repro.core.engine import run_caffeine
from repro.core.evaluation import BasisColumnCache
from repro.core.problem import Problem
from repro.core.session import (
    LegacyProgressCallback,
    Session,
    SessionCallback,
)
from repro.core.settings import CaffeineSettings
from repro.data.dataset import Dataset

SETTINGS = CaffeineSettings(population_size=16, n_generations=3,
                            random_seed=3)


def _dataset(seed: int, target_name: str = "y", n: int = 50) -> Dataset:
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 2.0, size=(n, 3))
    y = 3.0 + 2.0 * X[:, 0] / X[:, 1] + 0.5 * X[:, 2] * seed
    return Dataset(X, y, variable_names=("a", "b", "c"),
                   target_name=target_name)


def _two_problems():
    # Same X for both (the paper's sweep shape): the shared cache genuinely
    # shares, and the fingerprint layer is exercised.
    rng = np.random.default_rng(0)
    X = rng.uniform(0.5, 2.0, size=(50, 3))
    names = ("a", "b", "c")
    p1 = Problem(train=Dataset(X, 3 + 2 * X[:, 0] / X[:, 1], names,
                               target_name="t1"))
    p2 = Problem(train=Dataset(X, X[:, 2] ** 2 + X[:, 0], names,
                               target_name="t2"))
    return [p1, p2]


def _front(result):
    # NaN test errors (no test data) compare unequal to themselves; map
    # them to None so bit-for-bit tuples stay comparable.
    return [(m.train_error,
             None if np.isnan(m.test_error) else m.test_error,
             m.complexity, m.expression())
            for m in result.tradeoff]


class TestProblem:
    def test_name_defaults_to_target(self):
        problem = Problem(train=_dataset(1, target_name="PM"))
        assert problem.name == "PM"
        assert problem.variable_names == ("a", "b", "c")

    def test_mismatched_test_rejected(self):
        train = _dataset(1, target_name="PM")
        test = _dataset(2, target_name="SRp")
        with pytest.raises(ValueError, match="target"):
            Problem(train=train, test=test)

    def test_from_arrays_default_names_and_log10(self):
        X = np.full((10, 2), 2.0)
        problem = Problem.from_arrays(X, np.full(10, 100.0),
                                      target_name="fu", log10_target=True)
        assert problem.variable_names == ("x0", "x1")
        assert problem.train.log_scaled
        assert np.allclose(problem.train.y, 2.0)
        with pytest.raises(ValueError, match="X_test was given"):
            Problem.from_arrays(X, np.ones(10), X_test=X)

    def test_from_csv_round_trip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,y\n1.0,2.0,5.0\n2.0,not-a-number,6.0\n"
                        "3.0,1.0,7.0\n1.0,2.0\n")  # last line truncated
        problem = Problem.from_csv(path, target="y")
        assert problem.variable_names == ("a", "b")
        # Bad cells AND bad row shapes become NaN rows -- counted, never
        # silently skipped -- and the engine drops them at run time.
        assert problem.train.n_samples == 4
        cleaned = problem.train.drop_nonfinite()
        assert cleaned.n_samples == 2
        with pytest.raises(ValueError, match="target column"):
            Problem.from_csv(path, target="nope")
        with pytest.raises(ValueError, match="feature columns"):
            Problem.from_csv(path, target="y", feature_columns=["a", "zz"])

    def test_from_csv_rejects_label_columns(self, tmp_path):
        path = tmp_path / "labeled.csv"
        path.write_text("id,a,y\nrun-1,1.0,5.0\nrun-2,2.0,6.0\n")
        # An all-text column included as a feature would NaN every row;
        # name it instead of silently emptying the dataset.
        with pytest.raises(ValueError, match=r"\['id'\] contain no numeric"):
            Problem.from_csv(path, target="y")
        problem = Problem.from_csv(path, target="y",
                                   feature_columns=["a"])
        assert problem.variable_names == ("a",)
        with pytest.raises(ValueError, match="'id' contains no numeric"):
            Problem.from_csv(path, target="id", feature_columns=["a"])

    def test_empty_row_selection_is_a_legal_empty_dataset(self):
        dataset = _dataset(1)
        empty = dataset.select_rows([])
        assert empty.n_samples == 0
        all_nan = Dataset(np.full((3, 2), np.nan), np.full(3, np.nan),
                          variable_names=("a", "b"))
        assert all_nan.drop_nonfinite().n_samples == 0

    def test_picklable(self):
        import pickle

        problem = Problem(train=_dataset(1), metadata={"units": "deg"})
        clone = pickle.loads(pickle.dumps(problem))
        assert clone.name == problem.name
        assert clone.metadata == {"units": "deg"}
        assert np.array_equal(clone.train.X, problem.train.X)


class TestSerialEquality:
    def test_session_matches_legacy_run_caffeine(self):
        """Fixed-seed bit-for-bit equality: Session vs the legacy shim.

        (The shim itself routes through Session now, so run each problem
        through a *bare* one-problem session AND through run_caffeine with
        a pre-shared cache -- the historic driver shape -- and compare.)
        """
        problems = _two_problems()
        outcome = Session(problems, settings=SETTINGS).run()

        shared = BasisColumnCache(SETTINGS.basis_cache_size)
        for problem in problems:
            legacy = run_caffeine(problem.train, settings=SETTINGS,
                                  column_cache=shared)
            assert _front(legacy) == _front(outcome[problem.name])

    def test_result_mapping_api(self):
        outcome = Session(_two_problems(), settings=SETTINGS).run()
        assert outcome.names == ("t1", "t2")
        assert len(outcome) == 2
        assert outcome[0] is outcome["t1"]
        assert outcome[1] is outcome["t2"]
        assert [name for name in outcome] == ["t1", "t2"]
        with pytest.raises(ValueError, match="not 1"):
            outcome.single()

    def test_per_problem_settings_override(self):
        problems = _two_problems()
        pinned = problems[1].with_settings(
            SETTINGS.copy(population_size=20, random_seed=9))
        outcome = Session([problems[0], pinned], settings=SETTINGS).run()
        assert outcome["t2"].settings.population_size == 20
        reference = run_caffeine(pinned.train, settings=pinned.settings)
        assert _front(reference) == _front(outcome["t2"])

    def test_validation_errors(self):
        problems = _two_problems()
        with pytest.raises(ValueError, match="jobs"):
            Session(problems, jobs=0)
        with pytest.raises(ValueError, match="column_cache_path"):
            Session(problems, jobs=2, column_cache=BasisColumnCache(10))
        with pytest.raises(ValueError, match="already scheduled"):
            Session([problems[0], problems[0]])
        with pytest.raises(TypeError, match="Problem"):
            Session([_dataset(1)])
        with pytest.raises(ValueError, match="no problems"):
            Session([], settings=SETTINGS).run()
        with pytest.raises(ValueError, match="checkpoint_column_cache"):
            Session(problems, checkpoint_column_cache=True)


class TestParallel:
    def test_jobs2_bitwise_identical_to_serial(self, tmp_path):
        problems = _two_problems()
        serial = Session(problems, settings=SETTINGS).run()
        parallel = Session(problems, settings=SETTINGS, jobs=2,
                           column_cache_path=str(tmp_path / "cols.cache")
                           ).run()
        for name in serial.names:
            assert _front(serial[name]) == _front(parallel[name])
        assert parallel.jobs == 2
        # Both workers merged their columns into the shared store.
        assert os.path.exists(tmp_path / "cols.cache")
        merged = ColumnCacheStore(tmp_path / "cols.cache").load(100000)
        assert len(merged) > 0

    def test_parallel_callbacks_fire_in_order(self):
        events = []

        class Recorder(SessionCallback):
            def on_problem_start(self, problem, index, total):
                events.append(("start", problem.name, index, total))

            def on_problem_end(self, problem, result, index, total):
                events.append(("end", problem.name, index, total))

        Session(_two_problems(), settings=SETTINGS, jobs=2,
                callbacks=[Recorder()]).run()
        assert events[:2] == [("start", "t1", 0, 2), ("start", "t2", 1, 2)]
        assert events[2:] == [("end", "t1", 0, 2), ("end", "t2", 1, 2)]


class TestCallbacksAndCheckpoints:
    def test_serial_callback_sequence(self):
        events = []

        class Recorder(SessionCallback):
            def on_session_start(self, problems):
                events.append(("session_start", len(problems)))

            def on_problem_start(self, problem, index, total):
                events.append(("start", problem.name))

            def on_generation(self, problem, generation, stats):
                events.append(("gen", problem.name, generation))

            def on_problem_end(self, problem, result, index, total):
                events.append(("end", problem.name, result.n_models))

            def on_session_end(self, result):
                events.append(("session_end", result.names))

        outcome = Session(_two_problems(), settings=SETTINGS,
                          callbacks=[Recorder()]).run()
        assert events[0] == ("session_start", 2)
        assert events[1] == ("start", "t1")
        generations = [e for e in events if e[0] == "gen"]
        assert len(generations) == 2 * SETTINGS.n_generations
        assert events[-1] == ("session_end", ("t1", "t2"))
        # Callbacks observe, never change: same models as a silent run.
        silent = Session(_two_problems(), settings=SETTINGS).run()
        for name in outcome.names:
            assert _front(silent[name]) == _front(outcome[name])

    def test_legacy_progress_adapter(self):
        seen = []
        problem = _two_problems()[0]
        Session([problem], settings=SETTINGS,
                callbacks=[LegacyProgressCallback(
                    lambda gen, stats: seen.append(gen))]).run()
        assert seen == list(range(SETTINGS.n_generations))

    def test_checkpoint_saves_after_each_problem(self, tmp_path):
        path = str(tmp_path / "cols.cache")
        checkpoints = []

        class Recorder(SessionCallback):
            def on_checkpoint(self, problem, store_path, n_entries):
                checkpoints.append((problem.name, n_entries))

        Session(_two_problems(), settings=SETTINGS,
                column_cache_path=path, checkpoint_column_cache=True,
                callbacks=[Recorder()]).run()
        # One mid-run checkpoint (after t1; the final save is not one).
        assert [name for name, _n in checkpoints] == ["t1"]
        assert checkpoints[0][1] > 0
        assert os.path.exists(path)

    def test_persistent_path_warm_start_identical(self, tmp_path):
        path = str(tmp_path / "cols.cache")
        cold = Session(_two_problems(), settings=SETTINGS,
                       column_cache_path=path).run()
        warm = Session(_two_problems(), settings=SETTINGS,
                       column_cache_path=path).run()
        for name in cold.names:
            assert _front(cold[name]) == _front(warm[name])

    def test_warm_load_is_namespace_filtered(self, tmp_path):
        """Foreign namespaces in a shared store never occupy LRU room."""
        path = str(tmp_path / "cols.cache")
        # Seed the store with entries from an unrelated namespace.
        foreign = BasisColumnCache(100)
        foreign.put((("foreign-dataset", ("fs",)), ("col", 0)),
                    np.zeros(8))
        ColumnCacheStore(path).save(foreign)

        cache = BasisColumnCache(SETTINGS.basis_cache_size)
        Session(_two_problems(), settings=SETTINGS, column_cache=cache,
                column_cache_path=path).run()
        foreign_keys = [key for key, _column in cache.items()
                        if key[0][0] == "foreign-dataset"]
        assert foreign_keys == []  # filtered out, not loaded
        # ... while the store still holds the foreign namespace on disk.
        stored = ColumnCacheStore(path).load(100000)
        assert any(key[0][0] == "foreign-dataset"
                   for key, _column in stored.items())

    def test_parallel_rejects_unshippable_backend_on_spawn(self, monkeypatch):
        """Custom runtime registrations fail fast under spawn workers."""
        import multiprocessing

        from repro.core.pareto import PYTHON_PARETO_BACKEND
        from repro.core.registry import register_backend, unregister_backend

        monkeypatch.setattr(multiprocessing, "get_start_method",
                            lambda allow_none=False: "spawn")
        register_backend("pareto", "session-spawn-probe",
                         lambda: PYTHON_PARETO_BACKEND)
        try:
            custom = SETTINGS.copy(pareto_backend="session-spawn-probe")
            session = Session(_two_problems(), settings=custom, jobs=2)
            with pytest.raises(ValueError, match="runtime-registered"):
                session.run()
        finally:
            unregister_backend("pareto", "session-spawn-probe")

    def test_parallel_rejects_shadowed_builtin_on_spawn(self, monkeypatch):
        """replace=True shadowing is just as unshippable as a new name."""
        import multiprocessing

        from repro.core.pareto import PYTHON_PARETO_BACKEND
        from repro.core.registry import backend_registry

        monkeypatch.setattr(multiprocessing, "get_start_method",
                            lambda allow_none=False: "spawn")
        registry = backend_registry("pareto")
        original = registry.get("numpy")
        registry.register("numpy", lambda: PYTHON_PARETO_BACKEND,
                          replace=True)
        try:
            session = Session(_two_problems(), settings=SETTINGS, jobs=2)
            with pytest.raises(ValueError, match="runtime-registered"):
                session.run()
        finally:
            registry.register("numpy", original, replace=True)

    def test_cache_disabled_problem_never_touches_shared_cache(self):
        """basis_cache_size=0 problems opt out of the shared cache."""
        cache = BasisColumnCache(SETTINGS.basis_cache_size)
        no_cache = _two_problems()[1].with_settings(
            SETTINGS.copy(basis_cache_size=0))
        outcome = Session([no_cache], settings=SETTINGS,
                          column_cache=cache).run()
        assert len(cache) == 0  # nothing leaked into the shared cache
        # Results still match an independent run of the same settings.
        reference = run_caffeine(no_cache.train, settings=no_cache.settings)
        assert _front(reference) == _front(outcome["t2"])

    def test_shared_cache_sized_to_largest_problem_request(self):
        problems = _two_problems()
        big = problems[1].with_settings(SETTINGS.copy(basis_cache_size=50000))
        session = Session([problems[0], big], settings=SETTINGS)
        outcome = session.run()
        assert outcome.names == ("t1", "t2")  # runs fine; sizing is internal
        sizes = [p.effective_settings(SETTINGS).basis_cache_size
                 for p in session.problems]
        assert max(sizes) == 50000
