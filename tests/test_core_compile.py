"""Compiled tree evaluation == interpreter, bit for bit.

The compiled column backend (:mod:`repro.core.compile`) promises that every
evaluation path -- fresh tape, skeleton-cache reuse with different
parameters, per-node fallback, interpreter warmup -- produces the *exact*
bytes the interpreter produces, magnitude clip and NaN semantics included.
These tests enforce that promise over random trees (hypothesis) and over
hand-built edge cases, and check the evaluator/engine integration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings
from hypothesis import strategies as st

from repro.core.compile import (
    CompilationError,
    TreeCompiler,
    compile_basis_function,
    skeleton_and_params,
)
from repro.core.evaluation import PopulationEvaluator
from repro.core.expression import (
    BinaryOpTerm,
    ConditionalOpTerm,
    ExpressionNode,
    ProductTerm,
    UnaryOpTerm,
    WeightedSum,
    WeightedTerm,
)
from repro.core.functions import UNARY_OPERATORS, default_function_set
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual, evaluate_basis_column
from repro.core.operators import VariationOperators
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight

FAST = hyp_settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

OPS = default_function_set()


def _adversarial_X(rng: np.random.Generator, n_variables: int) -> np.ndarray:
    """Inputs that trigger every edge: domains errors (log/sqrt of
    negatives), division by zero, overflow past the magnitude clip, NaN."""
    return np.concatenate([
        rng.uniform(0.5, 2.0, size=(8, n_variables)),
        rng.uniform(-3.0, 3.0, size=(8, n_variables)),
        np.zeros((2, n_variables)),
        np.full((1, n_variables), 1e12),
        np.full((1, n_variables), -1e12),
        np.full((1, n_variables), np.nan),
    ])


def _assert_bitwise_equal(compiled: np.ndarray, interpreted: np.ndarray,
                          context: str = "") -> None:
    assert compiled.shape == interpreted.shape, context
    assert compiled.dtype == interpreted.dtype, context
    assert compiled.tobytes() == interpreted.tobytes(), \
        f"compiled column differs from interpreter {context}"


# ----------------------------------------------------------------------
# property tests over random trees
# ----------------------------------------------------------------------
@FAST
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_variables=st.integers(min_value=1, max_value=6),
       conditionals=st.booleans())
def test_compiled_matches_interpreter_on_random_trees(seed, n_variables,
                                                      conditionals):
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed,
                                enable_conditionals=conditionals)
    rng = np.random.default_rng(seed)
    generator = ExpressionGenerator(n_variables, settings, rng=rng)
    X = _adversarial_X(rng, n_variables)
    compiler = TreeCompiler(X)
    for basis in generator.random_basis_functions(5):
        interpreted = evaluate_basis_column(basis, X)
        # Twice: first sighting (interpreter warmup) and the compiled tape.
        _assert_bitwise_equal(compiler.column(basis), interpreted, "(warmup)")
        _assert_bitwise_equal(compiler.column(basis), interpreted, "(tape)")


@FAST
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_variables=st.integers(min_value=1, max_value=5))
def test_skeleton_reuse_matches_interpreter_on_mutants(seed, n_variables):
    """Parameter-mutated trees reuse the parent's tape, bit for bit."""
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed)
    rng = np.random.default_rng(seed)
    generator = ExpressionGenerator(n_variables, settings, rng=rng)
    operators = VariationOperators(generator, settings, rng=rng)
    X = _adversarial_X(rng, n_variables)
    compiler = TreeCompiler(X)
    basis = generator.random_product_term()
    # Force the skeleton into the compiled state (sighting + recurrence).
    compiler.column(basis)
    compiler.column(basis.clone())
    for _ in range(4):
        mutant = operators.parameter_mutation(
            Individual(bases=[basis.clone()])).bases[0]
        _assert_bitwise_equal(compiler.column(mutant),
                              evaluate_basis_column(mutant, X), "(mutant)")
    vc_mutant = operators.vc_mutation(Individual(bases=[basis.clone()]))
    if vc_mutant is not None:
        mutant = vc_mutant.bases[0]
        _assert_bitwise_equal(compiler.column(mutant),
                              evaluate_basis_column(mutant, X), "(vc mutant)")


@FAST
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_skeleton_walk_matches_lowering_order(seed):
    """The skeleton walk and the tape builder agree on parameter order."""
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed, enable_conditionals=True)
    rng = np.random.default_rng(seed)
    generator = ExpressionGenerator(4, settings, rng=rng)
    X = rng.uniform(0.5, 2.0, size=(10, 4))
    compiler = TreeCompiler(X)
    for basis in generator.random_basis_functions(4):
        _skeleton, params = skeleton_and_params(basis)
        kernel = compiler.compile(basis)
        assert kernel.compiled_params == params
        _assert_bitwise_equal(kernel(params),
                              evaluate_basis_column(basis, X), "(order)")


@FAST
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_individuals=st.integers(min_value=1, max_value=6))
def test_evaluator_backends_bitwise_identical(seed, n_individuals):
    """PopulationEvaluator: column_backend compiled == interp, bit for bit."""
    settings = CaffeineSettings(population_size=10, n_generations=1,
                                random_seed=seed, max_basis_functions=6)
    rng = np.random.default_rng(seed)
    generator = ExpressionGenerator(3, settings, rng=rng)
    X = np.random.default_rng(seed + 1).uniform(0.2, 2.0, size=(40, 3))
    y = np.random.default_rng(seed + 2).normal(size=40)
    population = [Individual(bases=generator.random_basis_functions())
                  for _ in range(n_individuals)]
    reference = [ind.clone() for ind in population]
    compiled = PopulationEvaluator(X, y,
                                   settings.copy(column_backend="compiled"))
    interp = PopulationEvaluator(X, y, settings.copy(column_backend="interp"))
    compiled.evaluate_population(population)
    interp.evaluate_population(reference)
    # Second pass: parameter mutants hit the compiled skeleton cache.
    operators = VariationOperators(generator, settings, rng=rng)
    mutants = [operators.parameter_mutation(ind.clone()) for ind in population]
    mutant_reference = [ind.clone() for ind in mutants]
    compiled.evaluate_population(mutants)
    interp.evaluate_population(mutant_reference)
    for a, b in zip(population + mutants, reference + mutant_reference):
        assert a.error == b.error
        assert a.complexity == b.complexity
        assert (a.fit is None) == (b.fit is None)
        if a.fit is not None:
            assert a.fit.intercept == b.fit.intercept
            assert np.array_equal(a.fit.coefficients, b.fit.coefficients)


# ----------------------------------------------------------------------
# hand-built edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    X = np.array([[0.5, 2.0], [1.5, 0.0], [-1.0, 3.0], [1e12, -1e12],
                  [np.nan, 1.0]])

    def check(self, basis: ProductTerm) -> None:
        compiler = TreeCompiler(self.X)
        interpreted = evaluate_basis_column(basis, self.X)
        _assert_bitwise_equal(compiler.column(basis), interpreted)
        _assert_bitwise_equal(compiler.column(basis.clone()), interpreted)
        _assert_bitwise_equal(compiler.column(basis.clone()), interpreted)

    def test_constant_vc_only(self):
        self.check(ProductTerm(vc=VariableCombo((0, 0))))

    def test_plain_monomial(self):
        self.check(ProductTerm(vc=VariableCombo((2, -1))))

    def test_magnitude_clip_maps_to_nan(self):
        basis = ProductTerm(vc=VariableCombo((4, 0)))  # (1e12)^4 -> clip
        column = TreeCompiler(self.X).column(basis)
        assert np.isnan(column[3])
        self.check(basis)

    def test_division_by_zero_and_log_of_negative(self):
        inv = UnaryOpTerm(op=OPS.operator("inv"),
                          argument=WeightedSum(
                              offset=Weight.from_value(0.0),
                              terms=[WeightedTerm(
                                  weight=Weight.from_value(1.0),
                                  term=ProductTerm(vc=VariableCombo((0, 1))))]))
        ln = UnaryOpTerm(op=OPS.operator("ln"),
                         argument=WeightedSum(
                             offset=Weight.from_value(0.0),
                             terms=[WeightedTerm(
                                 weight=Weight.from_value(1.0),
                                 term=ProductTerm(vc=VariableCombo((1, 0))))]))
        self.check(ProductTerm(vc=None, ops=[inv, ln]))

    def test_binary_weight_arguments_both_sides(self):
        expr = WeightedSum(offset=Weight.from_value(0.5),
                           terms=[WeightedTerm(
                               weight=Weight.from_value(2.0),
                               term=ProductTerm(vc=VariableCombo((1, 0))))])
        power = BinaryOpTerm(op=OPS.operator("pow"), left=expr,
                             right=Weight.from_value(2.0))
        division = BinaryOpTerm(op=OPS.operator("div"),
                                left=Weight.from_value(1.0),
                                right=expr.clone())
        self.check(ProductTerm(vc=None, ops=[power, division]))

    def test_empty_weighted_sum_argument(self):
        sqrt = UnaryOpTerm(op=OPS.operator("sqrt"),
                           argument=WeightedSum(offset=Weight.from_value(4.0)))
        self.check(ProductTerm(vc=None, ops=[sqrt]))

    def test_conditional_with_weight_and_expression_thresholds(self):
        def sum_of(index):
            return WeightedSum(offset=Weight.from_value(0.0),
                               terms=[WeightedTerm(
                                   weight=Weight.from_value(1.0),
                                   term=ProductTerm(vc=VariableCombo(
                                       tuple(1 if i == index else 0
                                             for i in range(2)))))])

        lte = OPS.operator("min")  # pseudo-record carrying a name
        for threshold in (Weight.from_value(1.0), sum_of(1)):
            conditional = ConditionalOpTerm(op=lte, test=sum_of(0),
                                            threshold=threshold,
                                            if_true=sum_of(1),
                                            if_false=sum_of(0))
            self.check(ProductTerm(vc=None, ops=[conditional]))

    def test_negative_zero_offset_distinct_from_positive_zero(self):
        for offset in (0.0, -0.0):
            weight = Weight.from_value(1.0)
            weight_sum = WeightedSum(
                offset=Weight(stored=offset, exponent_bound=10.0),
                terms=[WeightedTerm(weight=weight,
                                    term=ProductTerm(vc=VariableCombo((1, 0))))])
            self.check(ProductTerm(
                vc=None, ops=[UnaryOpTerm(op=OPS.operator("abs"),
                                          argument=weight_sum)]))


# ----------------------------------------------------------------------
# fallbacks and API behavior
# ----------------------------------------------------------------------
class _ExoticNode(ExpressionNode):
    """An op-term the compiler has never heard of (per-node fallback)."""

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        with np.errstate(all="ignore"):
            return np.tanh(X[:, 0])

    def clone(self):
        return _ExoticNode()


class _HollowNode(ExpressionNode):
    """A node without even an evaluate implementation."""

    def clone(self):
        return _HollowNode()


def test_unknown_node_falls_back_per_node():
    X = np.array([[0.5], [2.0], [-3.0]])
    basis = ProductTerm(vc=VariableCombo((2,)), ops=[_ExoticNode()])
    compiler = TreeCompiler(X)
    interpreted = evaluate_basis_column(basis, X)
    for _ in range(2):  # opaque trees compile fresh every call
        _assert_bitwise_equal(compiler.column(basis), interpreted)
    assert compiler.n_compiled == 2
    with pytest.raises(CompilationError):
        skeleton_and_params(basis)


def test_node_without_evaluate_uses_interpreter_error():
    X = np.array([[0.5], [2.0]])
    basis = ProductTerm(vc=VariableCombo((1,)), ops=[_HollowNode()])
    with pytest.raises(NotImplementedError):
        TreeCompiler(X).column(basis)


def test_variable_count_mismatch_raises_like_interpreter():
    basis = ProductTerm(vc=VariableCombo((1, 2, 3)))
    with pytest.raises(ValueError, match="columns"):
        TreeCompiler(np.ones((4, 2))).column(basis)


def test_kernel_cache_respects_capacity_and_warmup():
    rng = np.random.default_rng(0)
    X = rng.uniform(0.5, 2.0, size=(10, 2))
    compiler = TreeCompiler(X, max_kernels=1)
    a = ProductTerm(vc=VariableCombo((1, 0)))
    b = ProductTerm(vc=VariableCombo((0, 1)))
    for basis in (a, b, a, b):  # first sightings, then compilations
        compiler.column(basis)
    assert compiler.n_interpreted == 2
    assert compiler.n_compiled == 2
    assert len(compiler._kernels) == 1  # LRU capacity enforced
    # max_kernels=0 compiles fresh every time, still correct
    uncached = TreeCompiler(X, max_kernels=0)
    interpreted = evaluate_basis_column(a, X)
    for _ in range(2):
        _assert_bitwise_equal(uncached.column(a), interpreted)
    assert uncached.n_compiled == 2


def test_compile_basis_function_convenience():
    X = np.array([[0.5, 1.0], [2.0, 3.0]])
    basis = ProductTerm(vc=VariableCombo((1, -1)))
    kernel = compile_basis_function(basis, X)
    _assert_bitwise_equal(kernel(kernel.compiled_params),
                          evaluate_basis_column(basis, X))


class TestCanonicalFactorOrder:
    """Commutative factor-order variants collapse to one kernel."""

    def _order_variants(self):
        """Two trees identical up to the order of their product factors."""
        op_a = UnaryOpTerm(op=UNARY_OPERATORS["abs"],
                           argument=WeightedSum(offset=Weight(stored=1.0)))
        op_b = UnaryOpTerm(op=UNARY_OPERATORS["sqrt"],
                           argument=WeightedSum(offset=Weight(stored=2.0)))
        ab = ProductTerm(vc=VariableCombo((1, 0)),
                         ops=[op_a.clone(), op_b.clone()])
        ba = ProductTerm(vc=VariableCombo((1, 0)),
                         ops=[op_b.clone(), op_a.clone()])
        return ab, ba

    def test_canonicalized_variants_share_key_and_kernel(self):
        from repro.core.compile import canonicalize_factors
        from repro.core.expression import structural_key

        ab, ba = self._order_variants()
        assert structural_key(ab) != structural_key(ba)  # pre-normalization
        canonicalize_factors(ab)
        canonicalize_factors(ba)
        assert structural_key(ab) == structural_key(ba)
        assert skeleton_and_params(ab) == skeleton_and_params(ba)

        rng = np.random.default_rng(3)
        X = rng.uniform(0.5, 2.0, size=(12, 2))
        compiler = TreeCompiler(X)
        first = compiler.column(ab)    # first sighting: interpreted
        second = compiler.column(ba)   # recurrence: compiles one tape
        third = compiler.column(ab)    # served by the cached kernel
        assert compiler.n_compiled == 1
        assert compiler.n_kernel_hits == 1
        assert compiler.kernel_hit_rate == pytest.approx(1.0 / 3.0)
        # One canonical evaluation order => identical bits across variants
        # and against the interpreter on the canonical tree.
        _assert_bitwise_equal(first, second)
        _assert_bitwise_equal(second, third)
        _assert_bitwise_equal(first, evaluate_basis_column(ab, X))
        _assert_bitwise_equal(first, evaluate_basis_column(ba, X))

    def test_nested_order_variants_merge_post_order(self):
        """Outer factor lists must sort against *canonical* inner keys.

        Each tree here holds two outer factors that tie on everything
        before their nested products and carry OPPOSITE raw inner factor
        orders; only the trailing weight (3.0 vs 4.0) disambiguates them
        canonically.  A pre-order walk sorts the outer list while the
        nested orders still disagree, so the two canonically-identical
        trees end with different outer orders (and different structural
        keys) -- the post-order walk merges them to one.
        """
        from repro.core.compile import canonicalize_factors
        from repro.core.expression import structural_key

        def unary(name, term):
            return UnaryOpTerm(op=UNARY_OPERATORS[name],
                               argument=WeightedSum(
                                   offset=Weight(stored=1.0),
                                   terms=[WeightedTerm(
                                       weight=Weight(stored=2.0),
                                       term=term)]))

        def nested(abs_first):
            ops = [unary("abs", ProductTerm(vc=VariableCombo((1,)))),
                   unary("sqrt", ProductTerm(vc=VariableCombo((1,))))]
            return ProductTerm(ops=ops if abs_first
                               else list(reversed(ops)))

        def outer_factor(abs_first, trailing):
            return UnaryOpTerm(op=UNARY_OPERATORS["log10"],
                               argument=WeightedSum(
                                   offset=Weight(stored=1.0),
                                   terms=[WeightedTerm(
                                       weight=Weight(stored=2.0),
                                       term=nested(abs_first)),
                                       WeightedTerm(
                                           weight=Weight(stored=trailing),
                                           term=ProductTerm(
                                               vc=VariableCombo((1,))))]))

        def tree(first_abs_first):
            return ProductTerm(ops=[outer_factor(first_abs_first, 3.0),
                                    outer_factor(not first_abs_first, 4.0)])

        variants = [tree(True), tree(False)]
        assert structural_key(variants[0]) != structural_key(variants[1])
        for v in variants:
            canonicalize_factors(v)
        keys_after = {structural_key(v) for v in variants}
        assert len(keys_after) == 1
        # Idempotent: a second pass changes nothing.
        for v in variants:
            canonicalize_factors(v)
        assert {structural_key(v) for v in variants} == keys_after

    def test_canonicalization_is_idempotent_and_recursive(self):
        from repro.core.compile import canonicalize_factors
        from repro.core.expression import structural_key

        ab, ba = self._order_variants()
        # Nest the order variants one level down inside a weighted sum.
        outer_ab = ProductTerm(ops=[UnaryOpTerm(
            op=UNARY_OPERATORS["log10"],
            argument=WeightedSum(offset=Weight(stored=0.5),
                                 terms=[WeightedTerm(weight=Weight(stored=1.0),
                                                     term=ab)]))])
        outer_ba = ProductTerm(ops=[UnaryOpTerm(
            op=UNARY_OPERATORS["log10"],
            argument=WeightedSum(offset=Weight(stored=0.5),
                                 terms=[WeightedTerm(weight=Weight(stored=1.0),
                                                     term=ba)]))])
        canonicalize_factors(outer_ab)
        canonicalize_factors(outer_ba)
        assert structural_key(outer_ab) == structural_key(outer_ba)
        before = structural_key(outer_ab)
        canonicalize_factors(outer_ab)
        assert structural_key(outer_ab) == before

    def test_generator_and_operators_emit_canonical_trees(self):
        from repro.core.compile import canonicalize_factors
        from repro.core.expression import structural_key

        settings = CaffeineSettings(p_operator_factor=0.9,
                                    population_size=10, n_generations=1)
        generator = ExpressionGenerator(2, settings,
                                        rng=np.random.default_rng(23))
        operators = VariationOperators(generator, settings)
        population = [Individual(bases=generator.random_basis_functions())
                      for _ in range(12)]
        children = [operators.vary(population[i], population[(i + 1) % 12])
                    for i in range(12)]
        for individual in population + children:
            for basis in individual.bases:
                key_before = structural_key(basis)
                canonicalize_factors(basis)
                assert structural_key(basis) == key_before


def test_engine_fixed_seed_identical_across_column_backends():
    """A full run (engine + simplify) is backend-independent, model for model."""
    from repro.core.engine import run_caffeine
    from repro.data.dataset import Dataset

    rng = np.random.default_rng(7)
    X = rng.uniform(0.5, 2.0, size=(40, 3))
    y = 1.0 + X[:, 0] * X[:, 1] + np.sqrt(X[:, 2])
    train = Dataset(X=X, y=y, variable_names=("a", "b", "c"), target_name="t")
    base = CaffeineSettings.fast_settings(random_seed=11)
    results = {}
    for backend in ("interp", "compiled"):
        result = run_caffeine(train, settings=base.copy(column_backend=backend))
        results[backend] = [(m.train_error, m.complexity)
                            for m in result.tradeoff]
    assert results["compiled"] == results["interp"]
