"""Tests for the OTA performance model and its cross-validation against MNA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.ac import ac_analysis, logspace_frequencies
from repro.circuits.opformulation import OperatingPointFormulation
from repro.circuits.ota import (
    OTA_NOMINAL_POINT,
    OTA_PERFORMANCE_NAMES,
    OTA_VARIABLE_NAMES,
    SymmetricalOta,
    simulate_ota_performances,
)
from repro.circuits.performance import FrequencyResponse


class TestOperatingPointFormulation:
    def test_devices_resolved_from_point(self):
        formulation = OperatingPointFormulation()
        formulation.add_device("M1", "nmos", id="ibias", vgs="vgs1", vds="vds1")
        formulation.add_device("M2", "pmos", id=lambda p: 2 * p["ibias"],
                               vgs=1.0, vds="vds1")
        point = {"ibias": 20e-6, "vgs1": 1.1, "vds1": 1.5}
        ops = formulation.operating_points(point)
        assert ops["M1"].id == pytest.approx(20e-6)
        assert ops["M2"].id == pytest.approx(40e-6)
        assert formulation.total_current(point) == pytest.approx(60e-6)

    def test_missing_variable_raises(self):
        formulation = OperatingPointFormulation()
        formulation.add_device("M1", "nmos", id="ibias", vgs="vgs1", vds="vds1")
        with pytest.raises(KeyError):
            formulation.operating_points({"ibias": 1e-6, "vgs1": 1.0})

    def test_duplicate_device_rejected(self):
        formulation = OperatingPointFormulation()
        formulation.add_device("M1", "nmos", id=1e-6, vgs=1.0, vds=1.0)
        with pytest.raises(ValueError):
            formulation.add_device("M1", "pmos", id=1e-6, vgs=1.0, vds=1.0)

    def test_widths_positive(self):
        ota = SymmetricalOta()
        widths = ota.formulation.widths_um(OTA_NOMINAL_POINT)
        assert set(widths) == {"M1", "M2", "M3", "M4", "M5", "M6"}
        assert all(w > 0 for w in widths.values())


class TestNominalPerformances:
    def test_nominal_point_is_complete(self):
        assert set(OTA_NOMINAL_POINT) == set(OTA_VARIABLE_NAMES)
        assert len(OTA_VARIABLE_NAMES) == 13

    def test_nominal_values_physically_sensible(self):
        ota = SymmetricalOta()
        perf = ota.performances(OTA_NOMINAL_POINT)
        assert 20.0 < perf.alf_db < 60.0            # tens of dB of gain
        assert 1e6 < perf.fu_hz < 5e7               # MHz-range bandwidth
        assert 60.0 < perf.pm_degrees < 95.0        # stable amplifier
        assert abs(perf.voffset_v) < 20e-3          # millivolt offset
        assert perf.srp_v_per_s > 1e6               # V/us slew rates
        assert perf.srn_v_per_s < -1e6
        assert abs(abs(perf.srn_v_per_s) - perf.srp_v_per_s) \
            < 0.5 * perf.srp_v_per_s

    def test_as_dict_uses_paper_names(self):
        perf = SymmetricalOta().performances(OTA_NOMINAL_POINT)
        assert set(perf.as_dict()) == set(OTA_PERFORMANCE_NAMES)
        assert perf["PM"] == perf.pm_degrees


class TestPerformanceTrends:
    """The structural dependencies the paper's models discover must hold."""

    def test_gain_follows_input_drive_and_output_voltages(self):
        ota = SymmetricalOta()
        base = ota.performances(OTA_NOMINAL_POINT)
        # Larger input gate drive means lower gm/Id, hence lower gain (and a
        # lower unity-gain frequency, since fu is proportional to gm1).
        weaker_input = ota.performances(dict(OTA_NOMINAL_POINT, vsg1=1.20))
        assert weaker_input.alf_db < base.alf_db
        assert weaker_input.fu_hz < base.fu_hz

    def test_gain_is_ratiometric_in_currents(self):
        """With drive voltages fixed, scaling both currents leaves the
        square-law gain unchanged -- the hand-analysis expectation for the
        operating-point-driven formulation."""
        ota = SymmetricalOta()
        base = ota.performances(OTA_NOMINAL_POINT)
        scaled = ota.performances(dict(OTA_NOMINAL_POINT,
                                       id1=2.0 * OTA_NOMINAL_POINT["id1"],
                                       id2=2.0 * OTA_NOMINAL_POINT["id2"]))
        assert scaled.alf_db == pytest.approx(base.alf_db, abs=1.0)

    def test_slew_rate_proportional_to_output_current(self):
        ota = SymmetricalOta()
        base = ota.performances(OTA_NOMINAL_POINT)
        doubled = ota.performances(dict(OTA_NOMINAL_POINT,
                                        id2=2.0 * OTA_NOMINAL_POINT["id2"]))
        assert doubled.srp_v_per_s > 1.7 * base.srp_v_per_s

    def test_unity_gain_frequency_increases_with_gm(self):
        ota = SymmetricalOta()
        base = ota.performances(OTA_NOMINAL_POINT)
        more_gm = ota.performances(dict(OTA_NOMINAL_POINT,
                                        id1=1.5 * OTA_NOMINAL_POINT["id1"],
                                        id2=1.5 * OTA_NOMINAL_POINT["id2"]))
        assert more_gm.fu_hz > base.fu_hz

    def test_larger_load_lowers_bandwidth_and_slew(self):
        big_load = SymmetricalOta(load_capacitance=20e-12)
        small_load = SymmetricalOta(load_capacitance=10e-12)
        slow = big_load.performances(OTA_NOMINAL_POINT)
        fast = small_load.performances(OTA_NOMINAL_POINT)
        assert slow.fu_hz < fast.fu_hz
        assert slow.srp_v_per_s < fast.srp_v_per_s


class TestValidation:
    def test_missing_variable_rejected(self):
        ota = SymmetricalOta()
        incomplete = {k: v for k, v in OTA_NOMINAL_POINT.items() if k != "vsg1"}
        with pytest.raises(ValueError):
            ota.performances(incomplete)

    def test_nonpositive_variable_rejected(self):
        ota = SymmetricalOta()
        with pytest.raises(ValueError):
            ota.performances(dict(OTA_NOMINAL_POINT, id1=-1e-6))

    def test_subthreshold_drive_rejected(self):
        ota = SymmetricalOta()
        with pytest.raises(ValueError):
            ota.performances(dict(OTA_NOMINAL_POINT, vsg1=0.3))

    def test_invalid_load_capacitance(self):
        with pytest.raises(ValueError):
            SymmetricalOta(load_capacitance=0.0)


class TestBatchSimulation:
    def test_matrix_interface(self):
        points = np.array([[OTA_NOMINAL_POINT[k] for k in OTA_VARIABLE_NAMES]] * 4)
        results = simulate_ota_performances(points)
        assert set(results) == set(OTA_PERFORMANCE_NAMES)
        for values in results.values():
            assert values.shape == (4,)
            assert np.all(np.isfinite(values))
            assert np.allclose(values, values[0])

    def test_unbiasable_sample_yields_nan(self):
        good = [OTA_NOMINAL_POINT[k] for k in OTA_VARIABLE_NAMES]
        bad = list(good)
        bad[OTA_VARIABLE_NAMES.index("vsg1")] = 0.2  # below threshold
        results = simulate_ota_performances(np.array([good, bad]))
        assert np.isfinite(results["ALF"][0])
        assert np.isnan(results["ALF"][1])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_ota_performances(np.ones((2, 5)))


class TestCrossValidationAgainstMna:
    """The analytic performances must agree with the MNA small-signal netlist."""

    @pytest.fixture(scope="class")
    def responses(self):
        ota = SymmetricalOta()
        analytic = ota.performances(OTA_NOMINAL_POINT)
        circuit = ota.small_signal_circuit(OTA_NOMINAL_POINT)
        freqs = logspace_frequencies(10.0, 1e9, 30)
        sweep = ac_analysis(circuit, freqs)
        numeric = FrequencyResponse(freqs, sweep.voltage("out"))
        return analytic, numeric

    def test_low_frequency_gain_matches(self, responses):
        analytic, numeric = responses
        assert numeric.dc_gain_db() == pytest.approx(analytic.alf_db, abs=1.0)

    def test_unity_gain_frequency_matches(self, responses):
        analytic, numeric = responses
        assert numeric.unity_gain_frequency() == pytest.approx(
            analytic.fu_hz, rel=0.10)

    def test_phase_margin_matches(self, responses):
        analytic, numeric = responses
        assert numeric.phase_margin() == pytest.approx(
            analytic.pm_degrees, abs=5.0)
