"""Integration-level tests for the CAFFEINE engine, SAG and result models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import CaffeineEngine, run_caffeine
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.expression import ProductTerm
from repro.core.model import TradeoffSet
from repro.core.report import (
    comparison_table,
    format_percent,
    models_table,
    target_summary_row,
    tradeoff_table,
)
from repro.core.settings import CaffeineSettings
from repro.core.simplify import simplify_individual, simplify_population
from repro.core.variable_combo import VariableCombo


class TestEngineRun:
    @pytest.fixture(scope="class")
    def result(self, rational_train, rational_test, fast_settings):
        return run_caffeine(rational_train, rational_test, fast_settings)

    def test_returns_nonempty_tradeoff(self, result):
        assert result.n_models >= 2
        assert len(result.history) == result.settings.n_generations

    def test_tradeoff_is_nondominated(self, result):
        models = list(result.tradeoff)
        for a in models:
            for b in models:
                if a is b:
                    continue
                dominates = (a.train_error <= b.train_error
                             and a.complexity <= b.complexity
                             and (a.train_error < b.train_error
                                  or a.complexity < b.complexity))
                assert not dominates

    def test_training_error_decreases_with_complexity(self, result):
        models = list(result.tradeoff)
        errors = [m.train_error for m in models]
        complexities = [m.complexity for m in models]
        assert complexities == sorted(complexities)
        assert errors == sorted(errors, reverse=True)

    def test_best_model_is_accurate(self, result):
        best = result.best_model()
        assert best.train_error < 0.10  # the ground truth is expressible

    def test_history_statistics_sane(self, result):
        best_errors = [s.best_error for s in result.history]
        assert best_errors[-1] <= best_errors[0] + 1e-12
        assert all(s.n_feasible > 0 for s in result.history)

    def test_models_predict_in_original_domain(self, result, rational_test):
        best = result.best_model()
        predictions = best.predict(rational_test.X)
        assert predictions.shape == (rational_test.n_samples,)
        assert np.all(np.isfinite(predictions))

    def test_test_tradeoff_subset_of_tradeoff(self, result):
        expressions = {m.expression() for m in result.tradeoff}
        for model in result.test_tradeoff:
            assert model.expression() in expressions

    def test_reproducible_with_same_seed(self, rational_train, rational_test):
        settings = CaffeineSettings(population_size=20, n_generations=4,
                                    random_seed=7)
        first = run_caffeine(rational_train, rational_test, settings)
        second = run_caffeine(rational_train, rational_test, settings)
        assert [m.expression() for m in first.tradeoff] == \
            [m.expression() for m in second.tradeoff]

    def test_engine_rejects_mismatched_datasets(self, rational_train):
        other = rational_train.select_variables(["a", "b"])
        with pytest.raises(ValueError):
            CaffeineEngine(rational_train, test=other)

    def test_progress_callback_invoked(self, rational_train, fast_settings):
        calls = []
        settings = fast_settings.copy(n_generations=3, population_size=20)
        run_caffeine(rational_train, settings=settings,
                     progress=lambda gen, stats: calls.append(gen))
        assert calls == [0, 1, 2]


class TestBestModelSelection:
    """Regression tests for the ``best_model`` by= dispatch (it used to return
    the training-error winner for *every* value of ``by``)."""

    @pytest.fixture(scope="class")
    def result(self, rational_train, rational_test, fast_settings):
        return run_caffeine(rational_train, rational_test, fast_settings)

    def test_by_test_uses_test_tradeoff(self, result):
        assert len(result.test_tradeoff) > 0
        best = result.best_model(by="test")
        assert best.expression() == \
            result.test_tradeoff.most_accurate(by="test").expression()

    def test_by_train_uses_train_tradeoff(self, result):
        best = result.best_model(by="train")
        assert best.expression() == \
            result.tradeoff.most_accurate(by="train").expression()

    def test_by_test_falls_back_without_test_data(self, rational_train,
                                                  fast_settings):
        no_test = run_caffeine(rational_train, settings=fast_settings)
        assert len(no_test.test_tradeoff) == 0
        best = no_test.best_model(by="test")
        assert best.expression() == \
            no_test.tradeoff.most_accurate(by="train").expression()

    def test_unknown_by_raises(self, result):
        with pytest.raises(ValueError):
            result.best_model(by="validation")


class TestEngineEdgeCases:
    def test_collect_stats_all_infeasible(self, rational_train, fast_settings):
        """Statistics stay well-defined when no individual is feasible."""
        engine = CaffeineEngine(rational_train, settings=fast_settings)
        infeasible = Individual(bases=[ProductTerm(vc=VariableCombo((1, 0, 0)))])
        infeasible.error = float("inf")
        infeasible.fit = None
        infeasible.complexity = 10.0
        engine.population = [infeasible]
        stats = engine._collect_stats(0)
        assert stats.n_feasible == 0
        assert stats.front_size == 0
        assert stats.best_error == float("inf")
        assert stats.median_error == float("inf")
        assert stats.best_complexity == float("inf")
        assert engine.final_front() == []


class TestSimplification:
    def test_redundant_bases_are_pruned(self, rational_train, fast_settings):
        ratio = ProductTerm(vc=VariableCombo((1, -1, 0)))
        linear = ProductTerm(vc=VariableCombo((0, 0, 1)))
        # Add measurement noise so the fit is not exact; duplicated basis
        # functions then bring no predictive benefit and must be pruned.
        noisy = rational_train.with_target(
            rational_train.y
            + 0.02 * np.std(rational_train.y)
            * np.random.default_rng(0).normal(size=rational_train.n_samples))
        individual = Individual(bases=[ratio.clone(), ratio.clone(),
                                       ratio.clone(), linear])
        individual.evaluate(noisy.X, noisy.y, fast_settings)
        simplified = simplify_individual(individual, noisy.X, noisy.y,
                                         fast_settings)
        assert simplified.n_bases < individual.n_bases
        assert simplified.error <= individual.error * 1.05

    def test_noise_bases_are_pruned(self, rational_train, fast_settings):
        generator = ExpressionGenerator(3, fast_settings,
                                        rng=np.random.default_rng(3))
        useful = ProductTerm(vc=VariableCombo((1, -1, 0)))
        individual = Individual(bases=[useful] + generator.random_basis_functions(3))
        individual.evaluate(rational_train.X, rational_train.y, fast_settings)
        simplified = simplify_individual(individual, rational_train.X,
                                         rational_train.y, fast_settings)
        assert simplified.is_feasible
        assert simplified.complexity <= individual.complexity

    def test_constant_individual_passthrough(self, rational_train, fast_settings):
        individual = Individual(bases=[])
        simplified = simplify_individual(individual, rational_train.X,
                                         rational_train.y, fast_settings)
        assert simplified.n_bases == 0
        assert simplified.is_feasible

    def test_population_helper(self, rational_train, fast_settings):
        generator = ExpressionGenerator(3, fast_settings,
                                        rng=np.random.default_rng(4))
        population = [Individual(bases=generator.random_basis_functions())
                      for _ in range(5)]
        for individual in population:
            individual.evaluate(rational_train.X, rational_train.y, fast_settings)
        simplified = simplify_population(population, rational_train.X,
                                         rational_train.y, fast_settings)
        assert len(simplified) == 5


class TestTradeoffSetAndReport:
    @pytest.fixture(scope="class")
    def tradeoff(self, rational_train, rational_test, fast_settings):
        return run_caffeine(rational_train, rational_test, fast_settings).tradeoff

    def test_within_error_filter(self, tradeoff):
        tight = tradeoff.within_error(0.05, 0.05)
        for model in tight:
            assert model.train_error <= 0.05
            assert model.test_error <= 0.05

    def test_simplest_and_most_accurate(self, tradeoff):
        simplest = tradeoff.simplest()
        accurate = tradeoff.most_accurate(by="train")
        assert simplest.complexity <= accurate.complexity
        assert accurate.train_error <= simplest.train_error

    def test_closest_train_error(self, tradeoff):
        target = 0.05
        chosen = tradeoff.closest_train_error(target)
        assert all(abs(chosen.train_error - target)
                   <= abs(m.train_error - target) + 1e-12 for m in tradeoff)

    def test_empty_set_raises(self):
        empty = TradeoffSet([])
        assert empty.is_empty
        with pytest.raises(ValueError):
            empty.simplest()
        with pytest.raises(ValueError):
            empty.most_accurate()

    def test_used_variables_subset(self, tradeoff):
        for model in tradeoff:
            assert set(model.used_variables()) <= set(model.variable_names)

    def test_report_tables_render(self, tradeoff):
        text = tradeoff_table(tradeoff, title="demo")
        assert "demo" in text and "complexity" in text
        listing = models_table(tradeoff, title="models")
        assert "expression" in listing
        row = target_summary_row(tradeoff.simplest())
        assert "train" in row

    def test_comparison_table_and_percent(self):
        rows = [{"target": "PM", "caffeine_train": 0.10, "caffeine_test": 0.04,
                 "posynomial_train": 0.015, "posynomial_test": 0.12}]
        text = comparison_table(rows, title="figure4")
        assert "3.00x" in text
        assert format_percent(float("nan")) == "-"
        assert format_percent(0.123) == "12.30"
