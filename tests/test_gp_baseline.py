"""Tests for the unrestricted (plain) GP baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp import (
    ConstantNode,
    FunctionNode,
    PlainGPSettings,
    VariableNode,
    random_tree,
    run_plain_gp,
)
from repro.gp.nodes import GP_FUNCTIONS, iter_tree, replace_node


class TestNodes:
    def test_constant_and_variable_evaluation(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(ConstantNode(5.0).evaluate(X), [5.0, 5.0])
        np.testing.assert_allclose(VariableNode(1).evaluate(X), [2.0, 4.0])

    def test_function_node_evaluation_and_render(self):
        node = FunctionNode("div", [VariableNode(0), ConstantNode(2.0)])
        X = np.array([[4.0], [8.0]])
        np.testing.assert_allclose(node.evaluate(X), [2.0, 4.0])
        assert node.render(("x",)) == "(x / 2)"

    def test_function_arity_checked(self):
        with pytest.raises(ValueError):
            FunctionNode("add", [ConstantNode(1.0)])
        with pytest.raises(KeyError):
            FunctionNode("bogus", [ConstantNode(1.0), ConstantNode(2.0)])

    def test_size_and_depth(self):
        node = FunctionNode("add", [VariableNode(0),
                                    FunctionNode("neg", [ConstantNode(1.0)])])
        assert node.size == 4
        assert node.depth == 3

    def test_variable_out_of_range(self):
        with pytest.raises(IndexError):
            VariableNode(5).evaluate(np.ones((2, 2)))

    def test_random_tree_depth_limit(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            tree = random_tree(3, max_depth=5, rng=rng)
            assert tree.depth <= 5

    def test_iter_and_replace(self):
        rng = np.random.default_rng(1)
        tree = random_tree(2, max_depth=4, rng=rng, grow=False)
        nodes = iter_tree(tree)
        assert nodes[0] is tree
        replacement = ConstantNode(42.0)
        new_tree = replace_node(tree, nodes[-1], replacement)
        assert any(isinstance(n, ConstantNode) and n.value == 42.0
                   for n in iter_tree(new_tree))

    def test_function_table_contains_basics(self):
        assert {"add", "sub", "mul", "div"} <= set(GP_FUNCTIONS)


class TestPlainGPRun:
    def test_settings_validation(self):
        with pytest.raises(ValueError):
            PlainGPSettings(population_size=2)
        with pytest.raises(ValueError):
            PlainGPSettings(p_crossover=1.5)
        with pytest.raises(ValueError):
            PlainGPSettings(parsimony=-1.0)

    def test_finds_reasonable_model(self, rational_train, rational_test):
        settings = PlainGPSettings(population_size=60, n_generations=15,
                                   random_seed=0)
        result = run_plain_gp(rational_train, rational_test, settings)
        assert result.best.train_error < 0.5
        assert np.isfinite(result.best.test_error)
        assert result.best.size >= 1
        assert len(result.front) >= 1

    def test_front_is_nondominated(self, rational_train, rational_test):
        settings = PlainGPSettings(population_size=40, n_generations=8,
                                   random_seed=1)
        result = run_plain_gp(rational_train, rational_test, settings)
        front = result.front
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (a.train_error <= b.train_error and a.size <= b.size
                            and (a.train_error < b.train_error or a.size < b.size))

    def test_prediction_and_expression(self, rational_train):
        settings = PlainGPSettings(population_size=30, n_generations=5,
                                   random_seed=2)
        result = run_plain_gp(rational_train, settings=settings)
        predictions = result.best.predict(rational_train.X)
        assert predictions.shape == (rational_train.n_samples,)
        assert isinstance(result.best.expression(), str)

    def test_reproducible(self, rational_train):
        settings = PlainGPSettings(population_size=30, n_generations=5,
                                   random_seed=3)
        first = run_plain_gp(rational_train, settings=settings)
        second = run_plain_gp(rational_train, settings=settings)
        assert first.best.expression() == second.best.expression()
