"""Unit tests for variable combos (VC terminals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.variable_combo import VariableCombo


class TestConstruction:
    def test_paper_example_renders_as_ratio(self):
        """The paper's example [1, 0, -2, 1] means (x1*x4)/(x3^2)."""
        vc = VariableCombo((1, 0, -2, 1))
        text = vc.render(("x1", "x2", "x3", "x4"))
        assert text == "(x1*x4) / x3^2"

    def test_identity_and_single(self):
        identity = VariableCombo.identity(3)
        assert identity.is_constant
        assert identity.render(("a", "b", "c")) == "1"
        single = VariableCombo.single(3, 1, exponent=-1)
        assert single.render(("a", "b", "c")) == "1 / b"

    def test_total_order(self):
        assert VariableCombo((1, 0, -2, 1)).total_order == 4
        assert VariableCombo.identity(5).total_order == 0

    def test_used_variables(self):
        assert VariableCombo((0, 2, 0, -1)).used_variables() == (1, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VariableCombo(())

    def test_single_out_of_range(self):
        with pytest.raises(IndexError):
            VariableCombo.single(3, 5)


class TestEvaluation:
    def test_matches_manual_product(self):
        vc = VariableCombo((1, -2, 1))
        X = np.array([[2.0, 4.0, 3.0], [1.0, 2.0, 5.0]])
        expected = X[:, 0] * X[:, 2] / X[:, 1] ** 2
        np.testing.assert_allclose(vc.evaluate(X), expected)

    def test_constant_combo_evaluates_to_one(self):
        vc = VariableCombo.identity(2)
        np.testing.assert_allclose(vc.evaluate(np.ones((4, 2))), np.ones(4))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            VariableCombo((1, 1)).evaluate(np.ones((3, 3)))

    def test_negative_base_with_integer_exponent(self):
        vc = VariableCombo((2,))
        np.testing.assert_allclose(vc.evaluate(np.array([[-3.0]])), [9.0])


class TestRandomGeneration:
    def test_never_constant(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            vc = VariableCombo.random(5, rng)
            assert not vc.is_constant

    def test_respects_max_exponent(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            vc = VariableCombo.random(4, rng, max_exponent=2)
            assert all(abs(e) <= 2 for e in vc.exponents)

    def test_positive_only_mode(self):
        rng = np.random.default_rng(2)
        for _ in range(100):
            vc = VariableCombo.random(4, rng, allow_negative=False)
            assert all(e >= 0 for e in vc.exponents)

    def test_invalid_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            VariableCombo.random(0, rng)
        with pytest.raises(ValueError):
            VariableCombo.random(3, rng, max_exponent=0)


class TestOperators:
    def test_mutation_changes_one_exponent_by_one(self):
        rng = np.random.default_rng(3)
        vc = VariableCombo((1, 0, -1))
        mutated = vc.mutated(rng)
        differences = [abs(a - b) for a, b in zip(vc.exponents, mutated.exponents)]
        assert sum(differences) <= 1
        assert vc.exponents == (1, 0, -1)  # original untouched

    def test_mutation_respects_bounds(self):
        rng = np.random.default_rng(4)
        vc = VariableCombo((4,))
        for _ in range(50):
            vc = vc.mutated(rng, max_exponent=4)
            assert -4 <= vc.exponents[0] <= 4

    def test_mutation_positive_only(self):
        rng = np.random.default_rng(5)
        vc = VariableCombo((0, 0))
        for _ in range(30):
            vc = vc.mutated(rng, allow_negative=False)
            assert all(e >= 0 for e in vc.exponents)

    def test_crossover_mixes_exponents(self):
        rng = np.random.default_rng(6)
        parent_a = VariableCombo((1, 1, 1, 1))
        parent_b = VariableCombo((-1, -1, -1, -1))
        child_a, child_b = parent_a.crossover(parent_b, rng)
        # Each child position comes from one of the two parents.
        for child in (child_a, child_b):
            assert all(e in (-1, 1) for e in child.exponents)
        # The two children are complementary.
        assert all(a + b == 0 for a, b in zip(child_a.exponents, child_b.exponents))

    def test_crossover_dimension_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            VariableCombo((1,)).crossover(VariableCombo((1, 1)), rng)

    def test_crossover_single_variable_returns_copies(self):
        rng = np.random.default_rng(0)
        child_a, child_b = VariableCombo((2,)).crossover(VariableCombo((-1,)), rng)
        assert child_a.exponents == (2,)
        assert child_b.exponents == (-1,)

    def test_equality_and_hash(self):
        assert VariableCombo((1, 2)) == VariableCombo((1, 2))
        assert hash(VariableCombo((1, 2))) == hash(VariableCombo((1, 2)))
        assert VariableCombo((1, 2)) != VariableCombo((2, 1))
