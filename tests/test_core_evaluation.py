"""Tests for the batch population-evaluation subsystem and structural keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run_caffeine
from repro.core.evaluation import (
    BasisColumnCache,
    PopulationEvaluator,
    evaluate_individual_inplace,
)
from repro.core.expression import ProductTerm, UnaryOpTerm, WeightedSum, structural_key
from repro.core.functions import UNARY_OPERATORS
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight


@pytest.fixture()
def generator(fast_settings):
    return ExpressionGenerator(3, fast_settings, rng=np.random.default_rng(11))


def _random_population(generator, n: int):
    return [Individual(bases=generator.random_basis_functions())
            for _ in range(n)]


class TestStructuralKey:
    def test_clone_has_equal_key(self, generator):
        for basis in generator.random_basis_functions(4):
            assert structural_key(basis) == structural_key(basis.clone())

    def test_key_is_hashable(self, generator):
        keys = {structural_key(b) for b in generator.random_basis_functions(4)}
        assert len(keys) >= 1

    def test_different_exponents_differ(self):
        a = ProductTerm(vc=VariableCombo((1, 0, -2)))
        b = ProductTerm(vc=VariableCombo((1, 0, 2)))
        assert structural_key(a) != structural_key(b)

    def test_different_weights_differ(self):
        def make(stored):
            argument = WeightedSum(offset=Weight(stored=stored))
            return ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS["abs"],
                                                argument=argument)])
        assert structural_key(make(1.0)) != structural_key(make(2.0))

    def test_different_operators_differ(self):
        argument = WeightedSum(offset=Weight(stored=1.0))
        a = ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS["abs"],
                                         argument=argument.clone())])
        b = ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS["sqrt"],
                                         argument=argument.clone())])
        assert structural_key(a) != structural_key(b)

    def test_operator_order_is_part_of_key(self):
        # Products are not reordered: the key encodes the exact float recipe.
        argument = WeightedSum(offset=Weight(stored=1.0))
        op_a = UnaryOpTerm(op=UNARY_OPERATORS["abs"], argument=argument.clone())
        op_b = UnaryOpTerm(op=UNARY_OPERATORS["sqrt"], argument=argument.clone())
        ab = ProductTerm(ops=[op_a.clone(), op_b.clone()])
        ba = ProductTerm(ops=[op_b.clone(), op_a.clone()])
        assert structural_key(ab) != structural_key(ba)

    def test_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            structural_key(object())


class TestBasisColumnCache:
    def test_lru_eviction(self):
        cache = BasisColumnCache(max_entries=2)
        cache.put(("a",), np.zeros(3))
        cache.put(("b",), np.ones(3))
        assert cache.get(("a",)) is not None  # refresh recency of "a"
        cache.put(("c",), np.full(3, 2.0))    # evicts "b"
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = BasisColumnCache(max_entries=0)
        cache.put(("a",), np.zeros(3))
        assert len(cache) == 0
        assert cache.get(("a",)) is None
        assert cache.stats.misses == 1

    def test_hit_rate(self):
        cache = BasisColumnCache(max_entries=4)
        cache.put(("a",), np.zeros(3))
        cache.get(("a",))
        cache.get(("missing",))
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.as_dict()["hit_rate"] == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BasisColumnCache(max_entries=-1)


class TestEvaluatorEquivalence:
    """Cached, uncached, serial and parallel evaluation are bit-for-bit equal."""

    def _assert_same_evaluation(self, a: Individual, b: Individual):
        assert a.error == b.error
        assert a.complexity == b.complexity
        assert a.normalization == b.normalization
        assert (a.fit is None) == (b.fit is None)
        if a.fit is not None:
            assert a.fit.intercept == b.fit.intercept
            assert np.array_equal(a.fit.coefficients, b.fit.coefficients)

    def test_matches_legacy_individual_evaluate(self, generator, rational_train,
                                                fast_settings):
        population = _random_population(generator, 12)
        legacy = [ind.clone() for ind in population]
        for individual in legacy:
            individual.evaluate(rational_train.X, rational_train.y, fast_settings)
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        evaluator.evaluate_population(population)
        for cached, uncached in zip(population, legacy):
            self._assert_same_evaluation(cached, uncached)

    def test_cache_hit_equals_cache_miss(self, generator, rational_train,
                                         fast_settings):
        individual = _random_population(generator, 1)[0]
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        first = evaluator.evaluate_individual(individual.clone())
        assert evaluator.n_fits_computed == 1
        # A structurally identical clone is served from the fit cache ...
        second = evaluator.evaluate_individual(individual.clone())
        assert evaluator.n_fits_computed == 1
        assert evaluator.n_fit_requests == 2
        assert evaluator.fit_hit_rate == pytest.approx(0.5)
        self._assert_same_evaluation(first, second)
        # ... and a weight-perturbed variant misses the fit cache but still
        # evaluates correctly against the legacy path.
        from repro.core.expression import iter_weights

        variant = individual.clone()
        perturbed = False
        for basis in variant.bases:
            for weight in iter_weights(basis):
                weight.stored = weight.stored + 0.5
                perturbed = True
        legacy = variant.clone()
        evaluator.evaluate_individual(variant)
        legacy.evaluate(rational_train.X, rational_train.y, fast_settings)
        if perturbed:
            assert evaluator.n_fits_computed == 2
        self._assert_same_evaluation(variant, legacy)

    def test_cache_disabled_still_correct(self, generator, rational_train,
                                          fast_settings):
        population = _random_population(generator, 6)
        reference = [ind.clone() for ind in population]
        no_cache = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(basis_cache_size=0))
        cached = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings)
        no_cache.evaluate_population(population)
        cached.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_tiny_cache_evicts_but_stays_correct(self, generator, rational_train,
                                                 fast_settings):
        population = _random_population(generator, 10)
        reference = [ind.clone() for ind in population]
        tiny = PopulationEvaluator(rational_train.X, rational_train.y,
                                   fast_settings.copy(basis_cache_size=2))
        big = PopulationEvaluator(rational_train.X, rational_train.y,
                                  fast_settings)
        tiny.evaluate_population(population)
        big.evaluate_population(reference)
        assert tiny.cache.stats.evictions > 0
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_thread_backend_matches_serial(self, generator, rational_train,
                                           fast_settings):
        population = _random_population(generator, 10)
        reference = [ind.clone() for ind in population]
        threaded = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(evaluation_backend="thread",
                               evaluation_workers=2))
        serial = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings)
        threaded.evaluate_population(population)
        serial.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_process_backend_falls_back_on_lambdas(self, generator,
                                                   rational_train, fast_settings):
        population = _random_population(generator, 4)
        # Guarantee at least one operator-bearing tree: its Operator record
        # holds a lambda, which cannot be pickled across a process boundary.
        with_op = ProductTerm(ops=[UnaryOpTerm(
            op=UNARY_OPERATORS["abs"],
            argument=WeightedSum(offset=Weight(stored=1.0)))])
        population.append(Individual(bases=[with_op]))
        evaluator = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(evaluation_backend="process",
                               evaluation_workers=2))
        # The default function set stores lambdas, which cannot cross a
        # process boundary; the evaluator must degrade to threads, warn once,
        # and still produce correct results.
        with pytest.warns(RuntimeWarning):
            evaluator.evaluate_population(population)
        reference = [ind.clone() for ind in population]
        for individual in reference:
            individual.evaluate(rational_train.X, rational_train.y, fast_settings)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_process_backend_runs_picklable_trees(self, rational_train,
                                                  fast_settings):
        """VC-only trees contain no lambdas, so the process pool genuinely
        runs (no fallback warning) and matches the serial results."""
        import warnings as warnings_module

        population = [Individual(bases=[ProductTerm(vc=VariableCombo((k, j, 1)))])
                      for k in (1, 2, 3) for j in (-1, -2)]
        reference = [ind.clone() for ind in population]
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            with PopulationEvaluator(
                    rational_train.X, rational_train.y,
                    fast_settings.copy(evaluation_backend="process",
                                       evaluation_workers=2)) as evaluator:
                evaluator.evaluate_population(population)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        serial = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings)
        serial.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_run_releases_worker_pool(self, rational_train):
        from repro.core.engine import CaffeineEngine

        settings = CaffeineSettings(population_size=20, n_generations=2,
                                    random_seed=0,
                                    evaluation_backend="thread",
                                    evaluation_workers=2)
        engine = CaffeineEngine(rational_train, settings=settings)
        engine.run()
        assert engine.evaluator._executor is None

    def test_simplify_rejects_mismatched_evaluator(self, generator,
                                                   rational_train, fast_settings):
        from repro.core.simplify import simplify_individual

        individual = _random_population(generator, 1)[0]
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        evaluator.evaluate_individual(individual)
        other_X = rational_train.X[:50]
        other_y = rational_train.y[:50]
        with pytest.raises(ValueError):
            simplify_individual(individual, other_X, other_y, fast_settings,
                                evaluator=evaluator)

    def test_infeasible_individuals_marked(self, rational_train, fast_settings):
        # x^-4 on a dataset containing zero blows up -> non-finite column.
        X = rational_train.X.copy()
        X[0, 0] = 0.0
        bad = Individual(bases=[ProductTerm(vc=VariableCombo((-4, 0, 0)))])
        evaluator = PopulationEvaluator(X, rational_train.y, fast_settings)
        evaluator.evaluate_individual(bad)
        assert not bad.is_feasible
        assert bad.error == float("inf")

    def test_evaluate_individual_inplace_helper(self, generator, rational_train,
                                                fast_settings):
        individual = _random_population(generator, 1)[0]
        reference = individual.clone()
        evaluate_individual_inplace(individual, rational_train.X,
                                    rational_train.y, fast_settings)
        reference.evaluate(rational_train.X, rational_train.y, fast_settings)
        self._assert_same_evaluation(individual, reference)


class TestEvaluatorValidation:
    def test_rejects_1d_X(self, fast_settings):
        with pytest.raises(ValueError):
            PopulationEvaluator(np.zeros(5), np.zeros(5), fast_settings)

    def test_rejects_sample_mismatch(self, fast_settings):
        with pytest.raises(ValueError):
            PopulationEvaluator(np.zeros((5, 2)), np.zeros(4), fast_settings)

    def test_settings_validate_backend(self):
        with pytest.raises(ValueError):
            CaffeineSettings(evaluation_backend="gpu")
        with pytest.raises(ValueError):
            CaffeineSettings(evaluation_workers=-1)
        with pytest.raises(ValueError):
            CaffeineSettings(basis_cache_size=-1)


class TestEndToEndReproducibility:
    def test_cache_on_off_same_tradeoff(self, rational_train, rational_test):
        """Fixed seed => identical trade-off whether or not the cache is on."""
        base = CaffeineSettings(population_size=20, n_generations=4,
                                random_seed=7)
        cached = run_caffeine(rational_train, rational_test, base)
        uncached = run_caffeine(rational_train, rational_test,
                                base.copy(basis_cache_size=0))
        assert [m.expression() for m in cached.tradeoff] == \
            [m.expression() for m in uncached.tradeoff]
        assert [m.train_error for m in cached.tradeoff] == \
            [m.train_error for m in uncached.tradeoff]

    def test_thread_backend_same_tradeoff(self, rational_train, rational_test):
        base = CaffeineSettings(population_size=20, n_generations=4,
                                random_seed=7)
        serial = run_caffeine(rational_train, rational_test, base)
        threaded = run_caffeine(rational_train, rational_test,
                                base.copy(evaluation_backend="thread",
                                          evaluation_workers=2))
        assert [m.expression() for m in serial.tradeoff] == \
            [m.expression() for m in threaded.tradeoff]

    def test_engine_cache_hits_accumulate(self, rational_train):
        from repro.core.engine import CaffeineEngine

        settings = CaffeineSettings(population_size=20, n_generations=3,
                                    random_seed=5)
        engine = CaffeineEngine(rational_train, settings=settings)
        result = engine.run()
        assert result.n_models >= 1
        # Clones and crossover survivors re-use parental basis functions, so
        # a multi-generation run must see cache hits.
        assert engine.evaluator.stats.hits > 0
        assert engine.evaluator.n_evaluated >= \
            settings.population_size * (settings.n_generations + 1)
