"""Tests for the batch population-evaluation subsystem and structural keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run_caffeine
from repro.core.evaluation import (
    BasisColumnCache,
    PopulationEvaluator,
    evaluate_individual_inplace,
)
from repro.core.expression import ProductTerm, UnaryOpTerm, WeightedSum, structural_key
from repro.core.functions import UNARY_OPERATORS
from repro.core.generator import ExpressionGenerator
from repro.core.individual import Individual
from repro.core.settings import CaffeineSettings
from repro.core.variable_combo import VariableCombo
from repro.core.weights import Weight


@pytest.fixture()
def generator(fast_settings):
    return ExpressionGenerator(3, fast_settings, rng=np.random.default_rng(11))


def _random_population(generator, n: int):
    return [Individual(bases=generator.random_basis_functions())
            for _ in range(n)]


class TestStructuralKey:
    def test_clone_has_equal_key(self, generator):
        for basis in generator.random_basis_functions(4):
            assert structural_key(basis) == structural_key(basis.clone())

    def test_key_is_hashable(self, generator):
        keys = {structural_key(b) for b in generator.random_basis_functions(4)}
        assert len(keys) >= 1

    def test_different_exponents_differ(self):
        a = ProductTerm(vc=VariableCombo((1, 0, -2)))
        b = ProductTerm(vc=VariableCombo((1, 0, 2)))
        assert structural_key(a) != structural_key(b)

    def test_different_weights_differ(self):
        def make(stored):
            argument = WeightedSum(offset=Weight(stored=stored))
            return ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS["abs"],
                                                argument=argument)])
        assert structural_key(make(1.0)) != structural_key(make(2.0))

    def test_different_operators_differ(self):
        argument = WeightedSum(offset=Weight(stored=1.0))
        a = ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS["abs"],
                                         argument=argument.clone())])
        b = ProductTerm(ops=[UnaryOpTerm(op=UNARY_OPERATORS["sqrt"],
                                         argument=argument.clone())])
        assert structural_key(a) != structural_key(b)

    def test_operator_order_is_part_of_key(self):
        # Products are not reordered: the key encodes the exact float recipe.
        argument = WeightedSum(offset=Weight(stored=1.0))
        op_a = UnaryOpTerm(op=UNARY_OPERATORS["abs"], argument=argument.clone())
        op_b = UnaryOpTerm(op=UNARY_OPERATORS["sqrt"], argument=argument.clone())
        ab = ProductTerm(ops=[op_a.clone(), op_b.clone()])
        ba = ProductTerm(ops=[op_b.clone(), op_a.clone()])
        assert structural_key(ab) != structural_key(ba)

    def test_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            structural_key(object())


class TestBasisColumnCache:
    def test_lru_eviction(self):
        cache = BasisColumnCache(max_entries=2)
        cache.put(("a",), np.zeros(3))
        cache.put(("b",), np.ones(3))
        assert cache.get(("a",)) is not None  # refresh recency of "a"
        cache.put(("c",), np.full(3, 2.0))    # evicts "b"
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = BasisColumnCache(max_entries=0)
        cache.put(("a",), np.zeros(3))
        assert len(cache) == 0
        assert cache.get(("a",)) is None
        assert cache.stats.misses == 1

    def test_hit_rate(self):
        cache = BasisColumnCache(max_entries=4)
        cache.put(("a",), np.zeros(3))
        cache.get(("a",))
        cache.get(("missing",))
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.as_dict()["hit_rate"] == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BasisColumnCache(max_entries=-1)


class TestEvaluatorEquivalence:
    """Cached, uncached, serial and parallel evaluation are bit-for-bit equal."""

    def _assert_same_evaluation(self, a: Individual, b: Individual):
        assert a.error == b.error
        assert a.complexity == b.complexity
        assert a.normalization == b.normalization
        assert (a.fit is None) == (b.fit is None)
        if a.fit is not None:
            assert a.fit.intercept == b.fit.intercept
            assert np.array_equal(a.fit.coefficients, b.fit.coefficients)

    def test_matches_legacy_individual_evaluate(self, generator, rational_train,
                                                fast_settings):
        population = _random_population(generator, 12)
        legacy = [ind.clone() for ind in population]
        for individual in legacy:
            individual.evaluate(rational_train.X, rational_train.y, fast_settings)
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        evaluator.evaluate_population(population)
        for cached, uncached in zip(population, legacy):
            self._assert_same_evaluation(cached, uncached)

    def test_cache_hit_equals_cache_miss(self, generator, rational_train,
                                         fast_settings):
        individual = _random_population(generator, 1)[0]
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        first = evaluator.evaluate_individual(individual.clone())
        assert evaluator.n_fits_computed == 1
        # A structurally identical clone is served from the fit cache ...
        second = evaluator.evaluate_individual(individual.clone())
        assert evaluator.n_fits_computed == 1
        assert evaluator.n_fit_requests == 2
        assert evaluator.fit_hit_rate == pytest.approx(0.5)
        self._assert_same_evaluation(first, second)
        # ... and a weight-perturbed variant misses the fit cache but still
        # evaluates correctly against the legacy path.
        from repro.core.expression import iter_weights

        variant = individual.clone()
        perturbed = False
        for basis in variant.bases:
            for weight in iter_weights(basis):
                weight.stored = weight.stored + 0.5
                perturbed = True
        legacy = variant.clone()
        evaluator.evaluate_individual(variant)
        legacy.evaluate(rational_train.X, rational_train.y, fast_settings)
        if perturbed:
            assert evaluator.n_fits_computed == 2
        self._assert_same_evaluation(variant, legacy)

    def test_cache_disabled_still_correct(self, generator, rational_train,
                                          fast_settings):
        population = _random_population(generator, 6)
        reference = [ind.clone() for ind in population]
        no_cache = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(basis_cache_size=0))
        cached = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings)
        no_cache.evaluate_population(population)
        cached.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_tiny_cache_evicts_but_stays_correct(self, generator, rational_train,
                                                 fast_settings):
        population = _random_population(generator, 10)
        reference = [ind.clone() for ind in population]
        tiny = PopulationEvaluator(rational_train.X, rational_train.y,
                                   fast_settings.copy(basis_cache_size=2))
        big = PopulationEvaluator(rational_train.X, rational_train.y,
                                  fast_settings)
        tiny.evaluate_population(population)
        big.evaluate_population(reference)
        assert tiny.cache.stats.evictions > 0
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_thread_backend_matches_serial(self, generator, rational_train,
                                           fast_settings):
        population = _random_population(generator, 10)
        reference = [ind.clone() for ind in population]
        threaded = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(evaluation_backend="thread",
                               evaluation_workers=2))
        serial = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings)
        threaded.evaluate_population(population)
        serial.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_process_backend_falls_back_on_lambdas(self, generator,
                                                   rational_train, fast_settings):
        population = _random_population(generator, 4)
        # The default operators are module-level functions now, so build an
        # artificial lambda-backed operator: it cannot be pickled across a
        # process boundary, which must trigger the thread fallback.
        from repro.core.functions import Operator

        lambda_op = Operator("lambda_abs", 1, lambda x: abs(x),
                             "lambda_abs({0})", "LABS")
        with_op = ProductTerm(ops=[UnaryOpTerm(
            op=lambda_op,
            argument=WeightedSum(offset=Weight(stored=1.0)))])
        population.append(Individual(bases=[with_op]))
        evaluator = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(evaluation_backend="process",
                               evaluation_workers=2))
        # Lambdas cannot cross a process boundary; the evaluator must
        # degrade to threads, warn once, and still produce correct results.
        with pytest.warns(RuntimeWarning):
            evaluator.evaluate_population(population)
        reference = [ind.clone() for ind in population]
        for individual in reference:
            individual.evaluate(rational_train.X, rational_train.y, fast_settings)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_process_backend_runs_picklable_trees(self, rational_train,
                                                  fast_settings):
        """Default-set trees (including operator-bearing ones) pickle, so
        the process pool genuinely runs (no fallback warning) and matches
        the serial results."""
        import warnings as warnings_module

        population = [Individual(bases=[ProductTerm(vc=VariableCombo((k, j, 1)))])
                      for k in (1, 2, 3) for j in (-1, -2)]
        population.append(Individual(bases=[ProductTerm(
            vc=VariableCombo((1, 0, 0)),
            ops=[UnaryOpTerm(op=UNARY_OPERATORS["sqrt"],
                             argument=WeightedSum(offset=Weight(stored=2.0)))])]))
        reference = [ind.clone() for ind in population]
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            with PopulationEvaluator(
                    rational_train.X, rational_train.y,
                    fast_settings.copy(evaluation_backend="process",
                                       evaluation_workers=2)) as evaluator:
                evaluator.evaluate_population(population)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        serial = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings)
        serial.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_run_releases_worker_pool(self, rational_train):
        from repro.core.engine import CaffeineEngine

        settings = CaffeineSettings(population_size=20, n_generations=2,
                                    random_seed=0,
                                    evaluation_backend="thread",
                                    evaluation_workers=2)
        engine = CaffeineEngine(rational_train, settings=settings)
        engine.run()
        assert engine.evaluator._executor is None

    def test_simplify_rejects_mismatched_evaluator(self, generator,
                                                   rational_train, fast_settings):
        from repro.core.simplify import simplify_individual

        individual = _random_population(generator, 1)[0]
        evaluator = PopulationEvaluator(rational_train.X, rational_train.y,
                                        fast_settings)
        evaluator.evaluate_individual(individual)
        other_X = rational_train.X[:50]
        other_y = rational_train.y[:50]
        with pytest.raises(ValueError):
            simplify_individual(individual, other_X, other_y, fast_settings,
                                evaluator=evaluator)

    def test_infeasible_individuals_marked(self, rational_train, fast_settings):
        # x^-4 on a dataset containing zero blows up -> non-finite column.
        X = rational_train.X.copy()
        X[0, 0] = 0.0
        bad = Individual(bases=[ProductTerm(vc=VariableCombo((-4, 0, 0)))])
        evaluator = PopulationEvaluator(X, rational_train.y, fast_settings)
        evaluator.evaluate_individual(bad)
        assert not bad.is_feasible
        assert bad.error == float("inf")

    def test_evaluate_individual_inplace_helper(self, generator, rational_train,
                                                fast_settings):
        individual = _random_population(generator, 1)[0]
        reference = individual.clone()
        evaluate_individual_inplace(individual, rational_train.X,
                                    rational_train.y, fast_settings)
        reference.evaluate(rational_train.X, rational_train.y, fast_settings)
        self._assert_same_evaluation(individual, reference)


class TestEvaluatorValidation:
    def test_rejects_1d_X(self, fast_settings):
        with pytest.raises(ValueError):
            PopulationEvaluator(np.zeros(5), np.zeros(5), fast_settings)

    def test_rejects_sample_mismatch(self, fast_settings):
        with pytest.raises(ValueError):
            PopulationEvaluator(np.zeros((5, 2)), np.zeros(4), fast_settings)

    def test_settings_validate_backend(self):
        with pytest.raises(ValueError):
            CaffeineSettings(evaluation_backend="gpu")
        with pytest.raises(ValueError):
            CaffeineSettings(evaluation_workers=-1)
        with pytest.raises(ValueError):
            CaffeineSettings(basis_cache_size=-1)


class TestGramPoolEquivalence:
    """Gram-pool fits are bit-for-bit identical to direct fit_linear fits."""

    def _assert_same_evaluation(self, a: Individual, b: Individual):
        assert a.error == b.error
        assert a.complexity == b.complexity
        assert (a.fit is None) == (b.fit is None)
        if a.fit is not None:
            assert a.fit.intercept == b.fit.intercept
            assert np.array_equal(a.fit.coefficients, b.fit.coefficients)
            assert a.fit.residual_sum_of_squares == b.fit.residual_sum_of_squares
            assert a.fit.rank == b.fit.rank
            assert a.fit.singular == b.fit.singular

    def test_gram_matches_direct_on_random_populations(self, generator,
                                                       rational_train,
                                                       fast_settings):
        population = _random_population(generator, 25)
        reference = [ind.clone() for ind in population]
        gram = PopulationEvaluator(rational_train.X, rational_train.y,
                                   fast_settings.copy(fit_backend="gram"))
        direct = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings.copy(fit_backend="direct"))
        gram.evaluate_population(population)
        direct.evaluate_population(reference)
        assert gram.gram_pool is not None and direct.gram_pool is None
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_gram_pairs_reused_across_generations(self, generator,
                                                  rational_train, fast_settings):
        """Re-evaluating overlapping individuals hits the pair pool: the
        second batch (clones with the fit cache disabled) computes no new
        pair dots."""
        population = _random_population(generator, 10)
        evaluator = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(fit_backend="gram", basis_cache_size=0))
        evaluator.evaluate_population(population)
        pairs_after_first = evaluator.gram_pool.n_pairs_computed
        assert pairs_after_first > 0
        evaluator.evaluate_population([ind.clone() for ind in population])
        assert evaluator.gram_pool.n_pairs_computed == pairs_after_first
        assert evaluator.gram_pool.pair_hit_rate > 0.0

    def test_gram_infeasible_individuals_match_direct(self, rational_train,
                                                      fast_settings):
        X = rational_train.X.copy()
        X[0, 0] = 0.0
        bad = Individual(bases=[ProductTerm(vc=VariableCombo((-4, 0, 0)))])
        gram = PopulationEvaluator(X, rational_train.y,
                                   fast_settings.copy(fit_backend="gram"))
        direct = PopulationEvaluator(X, rational_train.y,
                                     fast_settings.copy(fit_backend="direct"))
        a, b = bad.clone(), bad.clone()
        gram.evaluate_individual(a)
        direct.evaluate_individual(b)
        assert not a.is_feasible and not b.is_feasible
        self._assert_same_evaluation(a, b)

    def test_gram_tiny_pool_still_correct(self, generator, rational_train,
                                          fast_settings):
        """A pool far smaller than one batch thrashes but never lies."""
        population = _random_population(generator, 12)
        reference = [ind.clone() for ind in population]
        tiny = PopulationEvaluator(rational_train.X, rational_train.y,
                                   fast_settings.copy(fit_backend="gram",
                                                      gram_pool_size=3))
        direct = PopulationEvaluator(rational_train.X, rational_train.y,
                                     fast_settings.copy(fit_backend="direct"))
        tiny.evaluate_population(population)
        direct.evaluate_population(reference)
        for a, b in zip(population, reference):
            self._assert_same_evaluation(a, b)

    def test_settings_validate_fit_backend(self):
        with pytest.raises(ValueError):
            CaffeineSettings(fit_backend="magic")
        with pytest.raises(ValueError):
            CaffeineSettings(gram_pool_size=-1)
        with pytest.raises(ValueError):
            CaffeineSettings(pareto_backend="fortran")


class TestPicklableFunctionSet:
    """The default function set round-trips through pickle (so the process
    evaluation backend genuinely runs instead of degrading to threads)."""

    def test_default_function_set_round_trips(self):
        import pickle as pickle_module

        from repro.core.functions import default_function_set

        function_set = default_function_set()
        restored = pickle_module.loads(pickle_module.dumps(function_set))
        assert restored == function_set
        x = np.linspace(0.1, 2.0, 7)
        for original, copy in zip(
                function_set.unary + function_set.binary,
                restored.unary + restored.binary):
            args = (x,) * original.arity
            assert np.array_equal(original(*args), copy(*args),
                                  equal_nan=True)

    def test_operator_bearing_tree_round_trips(self, generator):
        import pickle as pickle_module

        X = np.linspace(0.5, 1.5, 12).reshape(4, 3)
        for basis in generator.random_basis_functions(4):
            restored = pickle_module.loads(pickle_module.dumps(basis))
            assert structural_key(restored) == structural_key(basis)
            assert np.array_equal(basis.evaluate(X), restored.evaluate(X),
                                  equal_nan=True)


class TestSharedColumnCache:
    """One BasisColumnCache serves several evaluators via dataset keys."""

    def test_same_data_shares_columns(self, generator, rational_train,
                                      fast_settings):
        from repro.core.evaluation import (
            dataset_fingerprint,
            function_set_fingerprint,
        )

        population = _random_population(generator, 8)
        shared = BasisColumnCache(max_entries=5000)
        y_other = rational_train.y * 2.0 + 1.0
        first = PopulationEvaluator(rational_train.X, rational_train.y,
                                    fast_settings, cache=shared)
        second = PopulationEvaluator(rational_train.X, y_other,
                                     fast_settings, cache=shared)
        assert first.dataset_key == second.dataset_key == \
            (dataset_fingerprint(rational_train.X),
             function_set_fingerprint(fast_settings.function_set))
        first.evaluate_population([ind.clone() for ind in population])
        computed_by_first = first.n_columns_computed
        assert computed_by_first > 0
        # Same X, different target: every column comes from the shared cache.
        second.evaluate_population([ind.clone() for ind in population])
        assert second.n_columns_computed == 0
        assert second.column_hit_rate == 1.0

    def test_different_function_sets_never_collide(self, rational_train,
                                                   fast_settings):
        """Same X but a different operator binding gets its own namespace:
        structural keys identify operators by name, so cross-set sharing is
        only safe when the implementations provably match."""
        from repro.core.functions import rational_function_set

        shared = BasisColumnCache(max_entries=5000)
        full = PopulationEvaluator(rational_train.X, rational_train.y,
                                   fast_settings, cache=shared)
        rational = PopulationEvaluator(
            rational_train.X, rational_train.y,
            fast_settings.copy(function_set=rational_function_set()),
            cache=shared)
        assert full.dataset_key != rational.dataset_key

    def test_different_data_never_collides(self, generator, rational_train,
                                           fast_settings):
        population = _random_population(generator, 6)
        shared = BasisColumnCache(max_entries=5000)
        X_other = rational_train.X * 1.5
        first = PopulationEvaluator(rational_train.X, rational_train.y,
                                    fast_settings, cache=shared)
        second = PopulationEvaluator(X_other, rational_train.y,
                                     fast_settings, cache=shared)
        assert first.dataset_key != second.dataset_key
        first.evaluate_population([ind.clone() for ind in population])
        shared_clones = [ind.clone() for ind in population]
        second.evaluate_population(shared_clones)
        # The shared cache must not have served columns evaluated on the
        # wrong X: results match a private-cache evaluation bit for bit.
        private = PopulationEvaluator(X_other, rational_train.y, fast_settings)
        private_clones = [ind.clone() for ind in population]
        private.evaluate_population(private_clones)
        assert second.n_columns_computed == private.n_columns_computed
        for a, b in zip(shared_clones, private_clones):
            assert a.error == b.error
            assert a.complexity == b.complexity


class TestEndToEndReproducibility:
    def test_cache_on_off_same_tradeoff(self, rational_train, rational_test):
        """Fixed seed => identical trade-off whether or not the cache is on."""
        base = CaffeineSettings(population_size=20, n_generations=4,
                                random_seed=7)
        cached = run_caffeine(rational_train, rational_test, base)
        uncached = run_caffeine(rational_train, rational_test,
                                base.copy(basis_cache_size=0))
        assert [m.expression() for m in cached.tradeoff] == \
            [m.expression() for m in uncached.tradeoff]
        assert [m.train_error for m in cached.tradeoff] == \
            [m.train_error for m in uncached.tradeoff]

    def test_thread_backend_same_tradeoff(self, rational_train, rational_test):
        base = CaffeineSettings(population_size=20, n_generations=4,
                                random_seed=7)
        serial = run_caffeine(rational_train, rational_test, base)
        threaded = run_caffeine(rational_train, rational_test,
                                base.copy(evaluation_backend="thread",
                                          evaluation_workers=2))
        assert [m.expression() for m in serial.tradeoff] == \
            [m.expression() for m in threaded.tradeoff]

    def test_gram_and_pareto_backends_same_tradeoff(self, rational_train,
                                                    rational_test):
        """Fixed seed => identical trade-offs with the gram-pool fits and
        the vectorized Pareto kernels on or off (all four combinations)."""
        base = CaffeineSettings(population_size=20, n_generations=4,
                                random_seed=7)
        reference = run_caffeine(rational_train, rational_test, base)
        for fit_backend in ("gram", "direct"):
            for pareto_backend in ("numpy", "python"):
                result = run_caffeine(
                    rational_train, rational_test,
                    base.copy(fit_backend=fit_backend,
                              pareto_backend=pareto_backend))
                assert [m.expression() for m in result.tradeoff] == \
                    [m.expression() for m in reference.tradeoff], \
                    (fit_backend, pareto_backend)
                assert [m.train_error for m in result.tradeoff] == \
                    [m.train_error for m in reference.tradeoff]
                assert [m.test_error for m in result.tradeoff] == \
                    [m.test_error for m in reference.tradeoff]

    def test_shared_column_cache_same_tradeoff(self, rational_train,
                                               rational_test):
        """Sharing a column cache across runs never changes the models."""
        from repro.core.evaluation import BasisColumnCache as Cache

        base = CaffeineSettings(population_size=20, n_generations=3,
                                random_seed=11)
        private = run_caffeine(rational_train, rational_test, base)
        shared = Cache(base.basis_cache_size)
        first = run_caffeine(rational_train, rational_test, base,
                             column_cache=shared)
        second = run_caffeine(rational_train, rational_test, base,
                              column_cache=shared)
        for result in (first, second):
            assert [m.expression() for m in result.tradeoff] == \
                [m.expression() for m in private.tradeoff]

    def test_engine_cache_hits_accumulate(self, rational_train):
        from repro.core.engine import CaffeineEngine

        settings = CaffeineSettings(population_size=20, n_generations=3,
                                    random_seed=5)
        engine = CaffeineEngine(rational_train, settings=settings)
        result = engine.run()
        assert result.n_models >= 1
        # Clones and crossover survivors re-use parental basis functions, so
        # a multi-generation run must see cache hits.
        assert engine.evaluator.stats.hits > 0
        assert engine.evaluator.n_evaluated >= \
            settings.population_size * (settings.n_generations + 1)
